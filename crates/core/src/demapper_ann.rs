//! The neural demapper and its receiver-facing adapters.
//!
//! The demapper MLP is trained on logits (fused BCE); at the receiver
//! its outputs convert directly to LLRs. With `p_k = σ(z_k) =
//! P(b_k = 1 | y)`, the workspace LLR convention
//! (`LLR = ln P(b=0) − ln P(b=1)`) gives simply `LLR_k = −z_k` — the
//! sigmoid never needs to be evaluated for demapping.

use hybridem_comm::demapper::Demapper;
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::matrix::Matrix;
use hybridem_nn::model::InferScratch;
use hybridem_nn::Sequential;
use std::cell::RefCell;

/// Reusable buffers for the batched receiver path: the I/Q input
/// matrix, the logits output and the model's internal ping-pong
/// activations. One set per thread — the link simulator calls
/// `demap_block` from many Monte-Carlo workers through `&dyn Demapper`,
/// and thread-locals keep the path allocation-free after warm-up
/// without serialising the workers behind a lock.
struct BlockScratch {
    input: Matrix<f32>,
    logits: Matrix<f32>,
    scratch: InferScratch,
}

thread_local! {
    static BLOCK_SCRATCH: RefCell<BlockScratch> = RefCell::new(BlockScratch {
        input: Matrix::zeros(0, 0),
        logits: Matrix::zeros(0, 0),
        scratch: InferScratch::new(),
    });
}

/// A trained demapper network with receiver adapters.
pub struct NeuralDemapper {
    model: Sequential,
}

impl NeuralDemapper {
    /// Wraps a logit-output model (`2 → … → m`).
    pub fn new(model: Sequential) -> Self {
        assert_eq!(model.input_dim(), 2, "demapper input must be I/Q");
        Self { model }
    }

    /// The underlying model (e.g. for snapshotting or FPGA export).
    pub fn model(&self) -> &Sequential {
        &self.model
    }

    /// Mutable access (training).
    pub fn model_mut(&mut self) -> &mut Sequential {
        &mut self.model
    }

    /// Bits per symbol.
    pub fn bits_per_symbol(&self) -> usize {
        self.model.output_dim()
    }

    /// Logits for a batch of received samples (`batch × 2` I/Q rows).
    pub fn logits(&self, samples: &Matrix<f32>) -> Matrix<f32> {
        self.model.infer(samples)
    }

    /// Bit probabilities `P(b_k = 1 | y)` for a batch.
    pub fn probabilities(&self, samples: &Matrix<f32>) -> Matrix<f32> {
        self.logits(samples)
            .map(hybridem_mathkit::special::sigmoid_f32)
    }

    /// Hard symbol decision for one sample: the label formed by the
    /// per-bit decisions (MSB first). One-sample convenience over
    /// [`NeuralDemapper::decide_symbols`].
    pub fn decide_symbol(&self, y: C32) -> usize {
        let z = self.logits(&Matrix::from_vec(1, 2, vec![y.re, y.im]));
        let m = self.bits_per_symbol();
        let mut label = 0usize;
        for k in 0..m {
            label = (label << 1) | usize::from(z[(0, k)] > 0.0);
        }
        label
    }

    /// Hard symbol decisions for a whole block in one batched
    /// inference — the sampling primitive of the decision-region
    /// extraction, which evaluates tens of thousands of grid points.
    /// `out` is cleared and refilled with one label per sample.
    pub fn decide_symbols(&self, ys: &[C32], out: &mut Vec<usize>) {
        let m = self.bits_per_symbol();
        out.clear();
        out.reserve(ys.len());
        // Chunked so the LLR staging buffer stays small and constant
        // regardless of how many grid points the caller sweeps.
        const CHUNK: usize = 1024;
        let mut llrs = vec![0f32; CHUNK.min(ys.len()) * m];
        for ys_c in ys.chunks(CHUNK) {
            let llrs = &mut llrs[..ys_c.len() * m];
            self.demap_block(ys_c, llrs);
            for chunk in llrs.chunks_exact(m) {
                let mut label = 0usize;
                for &l in chunk {
                    // LLR = −logit, so LLR < 0 ⇔ logit > 0 ⇔ bit 1:
                    // the same decision rule as `decide_symbol`.
                    label = (label << 1) | usize::from(l < 0.0);
                }
                out.push(label);
            }
        }
    }
}

impl Demapper for NeuralDemapper {
    fn bits_per_symbol(&self) -> usize {
        self.model.output_dim()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        let z = self.logits(&Matrix::from_vec(1, 2, vec![y.re, y.im]));
        let m = self.bits_per_symbol();
        for k in 0..m {
            out[k] = -z[(0, k)];
        }
    }

    fn demap_block(&self, ys: &[C32], out: &mut [f32]) {
        let m = self.bits_per_symbol();
        assert_eq!(
            out.len(),
            ys.len() * m,
            "demap_block output buffer must hold exactly {} LLRs",
            ys.len() * m
        );
        if ys.is_empty() {
            return;
        }
        // One N×2 batched inference for the whole block. Dense rows are
        // independent dot products, so row r of the batch is
        // bit-identical to a 1×2 inference of sample r — the property
        // the block≡per-symbol tests pin down.
        BLOCK_SCRATCH.with(|cell| {
            let s = &mut *cell.borrow_mut();
            s.input.resize_to(ys.len(), 2);
            for (row, y) in s.input.as_mut_slice().chunks_exact_mut(2).zip(ys) {
                row[0] = y.re;
                row[1] = y.im;
            }
            self.model
                .infer_into(&s.input, &mut s.logits, &mut s.scratch);
            debug_assert_eq!(s.logits.shape(), (ys.len(), m));
            for (o, &z) in out.iter_mut().zip(s.logits.as_slice()) {
                *o = -z;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_mathkit::rng::Xoshiro256pp;
    use hybridem_nn::model::MlpSpec;

    fn demapper(seed: u64) -> NeuralDemapper {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        NeuralDemapper::new(MlpSpec::paper_demapper_logits().build(&mut rng))
    }

    #[test]
    fn llr_sign_matches_probability() {
        let d = demapper(1);
        let y = C32::new(0.3, -0.8);
        let mut llr = [0f32; 4];
        d.llrs(y, &mut llr);
        let p = d.probabilities(&Matrix::from_vec(1, 2, vec![y.re, y.im]));
        for k in 0..4 {
            // p > 0.5 ⇔ bit 1 more likely ⇔ LLR < 0.
            assert_eq!(p[(0, k)] > 0.5, llr[k] < 0.0, "bit {k}");
        }
    }

    #[test]
    fn decide_symbol_consistent_with_llrs() {
        let d = demapper(2);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut llr = [0f32; 4];
        for _ in 0..100 {
            let y = C32::new(rng.normal_f32(), rng.normal_f32());
            let label = d.decide_symbol(y);
            d.llrs(y, &mut llr);
            for (k, &l) in llr.iter().enumerate() {
                let bit = (label >> (3 - k)) & 1;
                assert_eq!(bit == 1, l < 0.0);
            }
        }
    }

    #[test]
    fn batch_and_single_paths_agree() {
        let d = demapper(4);
        let batch = Matrix::from_rows(&[&[0.1f32, 0.2], &[-0.5, 0.9]]);
        let zs = d.logits(&batch);
        let mut llr = [0f32; 4];
        d.llrs(C32::new(0.1, 0.2), &mut llr);
        for k in 0..4 {
            assert!((llr[k] + zs[(0, k)]).abs() < 1e-6);
        }
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let d = demapper(5);
        let batch = Matrix::from_rows(&[&[3.0f32, -3.0]]);
        let p = d.probabilities(&batch);
        assert!(p.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
