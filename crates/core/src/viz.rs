//! Decision-region and constellation rendering (the paper's Fig. 3).
//!
//! Terminal-friendly ASCII art plus portable graymap (PGM) export so
//! experiment binaries can both print the regions and write image
//! artefacts without any graphics dependency.

use crate::extraction::ExtractionReport;
use hybridem_geom::grid::LabelGrid;
use hybridem_mathkit::complex::C32;
use std::fmt::Write as _;

/// Glyph for a label (hex digit for ≤16 labels, letters beyond).
fn glyph(label: u16) -> char {
    char::from_digit(label as u32 % 36, 36).unwrap_or('?')
}

/// Renders a label grid as ASCII art, downsampled to at most
/// `max_cols` columns; the vertical axis points up (positive imaginary
/// at the top), matching constellation plots.
pub fn ascii_regions(grid: &LabelGrid, max_cols: usize) -> String {
    assert!(max_cols >= 8);
    let step = grid.nx().div_ceil(max_cols).max(1);
    let mut out = String::new();
    let mut iy = grid.ny();
    while iy > 0 {
        iy = iy.saturating_sub(step);
        let mut ix = 0;
        while ix < grid.nx() {
            out.push(glyph(grid.label(ix, iy)));
            ix += step;
        }
        out.push('\n');
        if iy == 0 {
            break;
        }
    }
    out
}

/// ASCII regions with centroid markers (`*`) overlaid.
pub fn ascii_regions_with_centroids(report: &ExtractionReport, max_cols: usize) -> String {
    let grid = &report.grid;
    let step = grid.nx().div_ceil(max_cols).max(1);
    let w = grid.window();
    // Rasterise base map into a char grid first.
    let cols = grid.nx().div_ceil(step);
    let rows = grid.ny().div_ceil(step);
    let mut canvas = vec![vec![' '; cols]; rows];
    for (ry, row) in canvas.iter_mut().enumerate() {
        for (rx, slot) in row.iter_mut().enumerate() {
            let ix = (rx * step).min(grid.nx() - 1);
            // Row 0 is the top of the plot = maximum iy.
            let iy = grid.ny() - 1 - (ry * step).min(grid.ny() - 1);
            *slot = glyph(grid.label(ix, iy));
        }
    }
    for c in &report.centroids {
        let tx = (c.re as f64 - w.x0) / w.width();
        let ty = (c.im as f64 - w.y0) / w.height();
        if (0.0..1.0).contains(&tx) && (0.0..1.0).contains(&ty) {
            let rx = ((tx * cols as f64) as usize).min(cols - 1);
            let ry = rows - 1 - ((ty * rows as f64) as usize).min(rows - 1);
            canvas[ry][rx] = '*';
        }
    }
    let mut out = String::new();
    for row in canvas {
        out.extend(row);
        out.push('\n');
    }
    out
}

/// ASCII scatter of a constellation over `[-range, range]²`.
pub fn ascii_constellation(points: &[C32], range: f32, size: usize) -> String {
    assert!(size >= 8 && range > 0.0);
    let mut canvas = vec![vec!['.'; size]; size];
    for (u, p) in points.iter().enumerate() {
        let tx = ((p.re + range) / (2.0 * range)).clamp(0.0, 0.999);
        let ty = ((p.im + range) / (2.0 * range)).clamp(0.0, 0.999);
        let x = (tx * size as f32) as usize;
        let y = size - 1 - (ty * size as f32) as usize;
        canvas[y][x] = glyph(u as u16);
    }
    let mut out = String::new();
    for row in canvas {
        out.extend(row);
        out.push('\n');
    }
    out
}

/// Serialises a label grid as an ASCII PGM (P2) image; labels map to
/// evenly spaced gray levels. Returns the file content.
pub fn pgm_regions(grid: &LabelGrid) -> String {
    let labels = grid.distinct_labels();
    let max_label = labels.iter().copied().max().unwrap_or(0) as u32;
    let levels = (max_label + 1).max(2);
    let mut s = String::new();
    let _ = writeln!(s, "P2");
    let _ = writeln!(s, "# hybridem decision regions");
    let _ = writeln!(s, "{} {}", grid.nx(), grid.ny());
    let _ = writeln!(s, "255");
    for iy in (0..grid.ny()).rev() {
        let mut line = String::new();
        for ix in 0..grid.nx() {
            let v = (grid.label(ix, iy) as u32 * 255) / (levels - 1).max(1);
            let _ = write!(line, "{} ", v.min(255));
        }
        let _ = writeln!(s, "{}", line.trim_end());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_geom::grid::Window;

    fn quadrants() -> LabelGrid {
        LabelGrid::sample(Window::square(1.0), 32, 32, |p| {
            match (p.x >= 0.0, p.y >= 0.0) {
                (true, true) => 0,
                (false, true) => 1,
                (false, false) => 2,
                (true, false) => 3,
            }
        })
    }

    #[test]
    fn ascii_orientation() {
        let art = ascii_regions(&quadrants(), 32);
        let lines: Vec<&str> = art.lines().collect();
        assert!(!lines.is_empty());
        // Top row is +imag: left half label 1, right half label 0.
        let top = lines[0];
        assert!(top.starts_with('1'));
        assert!(top.ends_with('0'));
        let bottom = lines[lines.len() - 1];
        assert!(bottom.starts_with('2'));
        assert!(bottom.ends_with('3'));
    }

    #[test]
    fn ascii_downsamples() {
        let art = ascii_regions(&quadrants(), 16);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[0].len() <= 16);
    }

    #[test]
    fn constellation_scatter_places_labels() {
        let pts = [C32::new(0.9, 0.9), C32::new(-0.9, -0.9)];
        let art = ascii_constellation(&pts, 1.0, 16);
        let lines: Vec<&str> = art.lines().collect();
        // Label 0 near top-right, label 1 near bottom-left.
        assert!(lines[0..4].iter().any(|l| l.contains('0')));
        assert!(lines[12..16].iter().any(|l| l.contains('1')));
    }

    #[test]
    fn pgm_header_and_size() {
        let pgm = pgm_regions(&quadrants());
        let mut lines = pgm.lines();
        assert_eq!(lines.next(), Some("P2"));
        let _comment = lines.next();
        assert_eq!(lines.next(), Some("32 32"));
        assert_eq!(lines.next(), Some("255"));
        assert_eq!(pgm.lines().count(), 4 + 32);
        // All pixel values within 0..=255.
        for line in pgm.lines().skip(4) {
            for tok in line.split_whitespace() {
                let v: u32 = tok.parse().unwrap();
                assert!(v <= 255);
            }
        }
    }
}
