//! Online time-varying link runtime: the trigger→retrain→redeploy
//! loop the paper's adaptation story is actually about (DESIGN.md §10).
//!
//! [`OnlineLink`] streams frames through a scripted
//! [`TrajectoryChannel`]: each frame transmits known pilots plus
//! payload, demaps the whole frame in one block call, feeds the pilot
//! (or ECC) evidence to the [`AdaptationController`], and — for the
//! adaptive receiver — reacts to [`Recommendation::Retrain`] by
//! retraining the demapper ANN against a frozen snapshot of the
//! current channel, re-extracting centroids, and **swapping** both the
//! software [`HybridDemapper`] and the recompiled integer
//! [`QuantizedGraph`] deployment back into the datapath after a
//! retrain latency charged against the FPGA trainer cost model.
//!
//! [`run_drift_campaign`] shards many independent links (one
//! [`hybridem_parallel::shard::ShardRunner`] shard per link, per-link
//! RNG stream and state) over the paper's receiver line-up × a drift
//! scenario suite, pooling per-frame error counts in link order so the
//! [`DriftRuntimeReport`] artefact is a pure function of
//! `(spec, seed)` — byte-identical at any thread count.

use crate::adapt::{AdaptThresholds, AdaptationController, Recommendation};
use crate::config::SystemConfig;
use crate::demapper_ann::NeuralDemapper;
use crate::extraction::{extract, ExtractionConfig};
use crate::hybrid::HybridDemapper;
use crate::pipeline::HybridPipeline;
use crate::registry::{paper_registry, BackendHandle, BackendRegistry};
use crate::retrain::Retrainer;
use hybridem_comm::channel::Channel;
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::Demapper;
use hybridem_comm::ecc::{ConvCode, Viterbi};
use hybridem_comm::equalizer::{
    AdaptiveEqualizer, EqualizedDemapper, EqualizerConfig, EqualizerMode,
};
use hybridem_comm::metrics::BitwiseMiEstimator;
use hybridem_comm::trajectory::{ChannelState, Taps, Trajectory, TrajectoryChannel};
use hybridem_fpga::demapper_accel::SoftDemapperConfig;
use hybridem_fpga::graph::QuantizedGraph;
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::json::{FromJson, Json, JsonError};
use hybridem_mathkit::rng::{Rng64, SplitMix64, Xoshiro256pp};
use hybridem_nn::Sequential;
use hybridem_parallel::shard::ShardRunner;
use std::sync::Arc;

/// Which degradation evidence feeds the controller (paper §II-C
/// proposes both).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Monitor {
    /// Pilot-BER monitoring: the known pilot prefix of every frame is
    /// compared against its hard decisions.
    Pilot,
    /// ECC monitoring: the payload carries a rate-1/2 convolutional
    /// codeword and the Viterbi decoder's corrected-flip count is the
    /// quality metric (no pilot overhead needed for detection).
    Ecc,
}

/// What the adaptive receiver does when the controller fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerAction {
    /// Full loop: retrain, re-extract, recompile, swap after the
    /// modelled retrain latency.
    RetrainSwap,
    /// Record the trigger and reset the monitor — used by the
    /// detection-latency ablation, which measures *when* the trigger
    /// fires, not what retraining buys.
    LogOnly,
}

/// Everything about an online link except the scenario and the seed
/// (shared across a drift campaign's links and families).
#[derive(Clone, Debug)]
pub struct LinkParams {
    /// Symbols per frame (pilots + payload).
    pub frame_symbols: usize,
    /// Known pilot symbols at the start of every frame.
    pub pilot_symbols: usize,
    /// Evidence stream for the controller.
    pub monitor: Monitor,
    /// Reaction to a trigger.
    pub action: TriggerAction,
    /// Controller thresholds.
    pub thresholds: AdaptThresholds,
    /// Symbol rate in symbols/s — converts the FPGA trainer's
    /// simulated retrain time into frames of latency.
    pub symbol_rate: f64,
    /// Width of the recompiled integer deployment (the paper's 8-bit
    /// datapath).
    pub deploy_bits: u32,
}

impl Default for LinkParams {
    fn default() -> Self {
        Self {
            frame_symbols: 256,
            pilot_symbols: 64,
            monitor: Monitor::Pilot,
            action: TriggerAction::RetrainSwap,
            // The paper-default thresholds: high enough that a
            // reduced-budget AE's clean-channel BER (≈ 3 % under
            // HYBRIDEM_QUICK) never trips the monitor spuriously — a
            // spurious clean-channel retrain would eat the latency
            // budget right before a scripted drift lands.
            thresholds: AdaptThresholds::default(),
            symbol_rate: 1e6,
            deploy_bits: 8,
        }
    }
}

/// One online link: scenario, seed, and the shared parameters.
#[derive(Clone, Debug)]
pub struct OnlineLinkSpec {
    /// The scripted channel scenario.
    pub trajectory: Trajectory,
    /// Link seed (payload/pilot stream, retrain pilots, calibration).
    pub seed: u64,
    /// Shared link parameters.
    pub params: LinkParams,
}

impl OnlineLinkSpec {
    /// Spec with default parameters.
    pub fn new(trajectory: Trajectory, seed: u64) -> Self {
        Self {
            trajectory,
            seed,
            params: LinkParams::default(),
        }
    }
}

/// Per-frame log entry.
#[derive(Clone, Debug)]
pub struct FrameRecord {
    /// Frame index.
    pub frame: u64,
    /// Payload bits transmitted this frame.
    pub payload_bits: u64,
    /// Payload bit errors (raw demapped decisions, before any ECC).
    pub payload_bit_errors: u64,
    /// Pilot bits transmitted this frame.
    pub pilot_bits: u64,
    /// Pilot bit errors.
    pub pilot_bit_errors: u64,
    /// Bitwise mutual information over this frame's payload LLRs.
    pub mi: f64,
    /// The controller fired this frame.
    pub triggered: bool,
    /// A retrained demapper was swapped in at the start of this frame.
    pub swapped: bool,
}

impl FrameRecord {
    /// Payload BER (0 when the frame carried no payload — never NaN).
    pub fn ber(&self) -> f64 {
        if self.payload_bits == 0 {
            0.0
        } else {
            self.payload_bit_errors as f64 / self.payload_bits as f64
        }
    }

    /// Pilot BER (same zero-observation contract).
    pub fn pilot_ber(&self) -> f64 {
        if self.pilot_bits == 0 {
            0.0
        } else {
            self.pilot_bit_errors as f64 / self.pilot_bits as f64
        }
    }
}

/// One completed trigger→swap cycle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetrainEvent {
    /// Frame at which the controller fired.
    pub trigger_frame: u64,
    /// Frame at which the retrained demapper entered the datapath
    /// (equals `trigger_frame` for [`TriggerAction::LogOnly`]).
    pub swap_frame: u64,
    /// `swap_frame − trigger_frame`.
    pub latency_frames: u64,
    /// Simulated on-chip retraining time (s) from the FPGA trainer
    /// cost model (0 for `LogOnly`).
    pub sim_time_s: f64,
}

struct Pending {
    trigger_frame: u64,
    swap_frame: u64,
    hybrid: HybridDemapper,
    deployment: QuantizedGraph,
    sim_time_s: f64,
}

struct Adaptive {
    cfg: SystemConfig,
    ann: NeuralDemapper,
    hybrid: HybridDemapper,
    deployment: QuantizedGraph,
    controller: AdaptationController,
    pending: Option<Pending>,
    events: Vec<RetrainEvent>,
}

/// Compiles the current float demapper to the shared integer IR with
/// freshly calibrated tensor-boundary formats — the runtime's
/// mid-stream deployment path (full QAT fine-tuning would blow the
/// retrain-latency budget; see [`crate::qat::calibrate_boundaries`]).
fn compile_deployment(
    constellation: &Constellation,
    model: &Sequential,
    sigma: f32,
    bits: u32,
    seed: u64,
) -> QuantizedGraph {
    let boundaries =
        crate::qat::calibrate_boundaries(constellation, model, sigma, bits, 1024, seed);
    hybridem_fpga::graph::compile(model, &boundaries)
}

impl Adaptive {
    fn maybe_swap(&mut self, frame: u64) -> bool {
        if self.pending.as_ref().is_none_or(|p| frame < p.swap_frame) {
            return false;
        }
        let pnd = self.pending.take().unwrap();
        self.hybrid = pnd.hybrid;
        self.deployment = pnd.deployment;
        self.controller.reset_after_retrain();
        self.events.push(RetrainEvent {
            trigger_frame: pnd.trigger_frame,
            swap_frame: frame,
            latency_frames: frame - pnd.trigger_frame,
            sim_time_s: pnd.sim_time_s,
        });
        true
    }

    fn on_trigger(
        &mut self,
        frame: u64,
        constellation: &Constellation,
        channel: &TrajectoryChannel,
        params: &LinkParams,
    ) {
        match params.action {
            TriggerAction::LogOnly => {
                self.events.push(RetrainEvent {
                    trigger_frame: frame,
                    swap_frame: frame,
                    latency_frames: 0,
                    sim_time_s: 0.0,
                });
                self.controller.reset_after_retrain();
            }
            TriggerAction::RetrainSwap => {
                // Retrain against a *frozen* snapshot of the current
                // conditions (CFO rate folded to its accumulated
                // rotation): pilots collected at trigger time, not a
                // moving target.
                let mut snapshot: Box<dyn Channel> = Box::new(channel.snapshot_static());
                let mut rcfg = self.cfg.clone();
                rcfg.seed = SplitMix64::derive(self.cfg.seed, 0x5e7 + self.events.len() as u64);
                let mut rt = Retrainer::new(&rcfg).with_hardware_accounting();
                let report = rt.run(constellation, snapshot.as_mut(), &mut self.ann);
                let ecfg = ExtractionConfig::new(self.cfg.grid_n, self.cfg.window_scale);
                let ereport = extract(&self.ann, &ecfg, constellation);
                let hybrid = HybridDemapper::from_extraction(&ereport, self.cfg.sigma());
                let deployment = compile_deployment(
                    constellation,
                    self.ann.model(),
                    self.cfg.sigma(),
                    params.deploy_bits,
                    rcfg.seed,
                );
                let sim_time = report.sim_time_s.expect("hardware accounting enabled");
                let latency = ((sim_time * params.symbol_rate / channel.frame_symbols() as f64)
                    .ceil() as u64)
                    .max(1);
                self.pending = Some(Pending {
                    trigger_frame: frame,
                    swap_frame: frame + latency,
                    hybrid,
                    deployment,
                    sim_time_s: sim_time,
                });
            }
        }
    }
}

/// Policy of the backend-switching receiver: the `SwitchBackend`
/// adaptation action picks, from a [`BackendRegistry`], the cheapest
/// backend whose predicted BER at the current SNR estimate meets
/// `ber_target` — switching implementations instead of retraining
/// weights (DESIGN.md §13).
#[derive(Clone, Copy, Debug)]
pub struct SwitchPolicy {
    /// The link's BER target fed to [`BackendRegistry::select_or_best`].
    pub ber_target: f64,
    /// Frames of pilot evidence pooled into one SNR estimate; the
    /// estimator stays silent until the window fills.
    pub window_frames: usize,
    /// Minimum frames between switches (hysteresis against estimator
    /// noise flapping two backends near a selection threshold).
    pub min_dwell_frames: u64,
    /// Operating point assumed before the first estimate matures —
    /// selects the initial backend.
    pub initial_es_n0_db: f64,
    /// Estimate clamp floor in dB (an all-error window maps here).
    pub es_floor_db: f64,
    /// Estimate clamp ceiling in dB (an error-free window maps here).
    pub es_ceil_db: f64,
}

impl Default for SwitchPolicy {
    fn default() -> Self {
        Self {
            ber_target: 2e-2,
            window_frames: 8,
            min_dwell_frames: 8,
            initial_es_n0_db: 12.0,
            es_floor_db: -10.0,
            es_ceil_db: 40.0,
        }
    }
}

/// One backend switch of a switching link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwitchEvent {
    /// Frame whose evidence triggered the switch (the new backend
    /// demaps from the *next* frame).
    pub frame: u64,
    /// Backend that demapped up to and including `frame`.
    pub from: BackendHandle,
    /// Backend that demaps from `frame + 1`.
    pub to: BackendHandle,
    /// The windowed pilot SNR estimate (Es/N0 dB) behind the decision.
    pub est_es_n0_db: f64,
    /// True when `to` is cheaper than `from` (rising SNR earned a
    /// cheaper implementation); false for the accuracy upshift.
    pub downshift: bool,
}

/// The `SwitchBackend` receiver state: a registry handle, the live
/// demapper, and a ring buffer of per-frame pilot signal/error
/// energies feeding a data-aided SNR estimator.
struct Switching {
    registry: Arc<BackendRegistry>,
    policy: SwitchPolicy,
    active: BackendHandle,
    current: Arc<dyn Demapper>,
    win_sig: Vec<f64>,
    win_err: Vec<f64>,
    filled: usize,
    cursor: usize,
    last_switch: u64,
    just_switched: bool,
    trace: Vec<u32>,
    events: Vec<SwitchEvent>,
}

impl Switching {
    /// Windowed data-aided estimate: Es/N0 ≈ Σ|x|² / Σ|y·e^{−jθ} − x|²
    /// over the pooled pilot window, in dB, clamped to the policy range
    /// (an error-free window saturates at the ceiling). Each frame's
    /// error energy is derotated by its one-tap LS phase estimate
    /// before pooling (see the accumulation in [`OnlineLink::step`]),
    /// so a static rotation or slow CFO is not mistaken for noise.
    fn estimate_es_n0_db(&self) -> f64 {
        let sig: f64 = self.win_sig[..self.filled].iter().sum();
        let err: f64 = self.win_err[..self.filled].iter().sum();
        if err <= 0.0 {
            return self.policy.es_ceil_db;
        }
        (10.0 * (sig / err).log10()).clamp(self.policy.es_floor_db, self.policy.es_ceil_db)
    }

    /// Feeds one frame of pilot evidence and, once the window is full
    /// and the dwell has elapsed, re-runs the selection rule. Returns
    /// true when the decision switched backends (effective next
    /// frame).
    fn observe_pilots(&mut self, frame: u64, sig: f64, err: f64) -> bool {
        self.win_sig[self.cursor] = sig;
        self.win_err[self.cursor] = err;
        self.cursor = (self.cursor + 1) % self.win_sig.len();
        self.filled = (self.filled + 1).min(self.win_sig.len());
        if self.filled < self.win_sig.len()
            || frame < self.last_switch + self.policy.min_dwell_frames
        {
            return false;
        }
        let est = self.estimate_es_n0_db();
        let sel = self.registry.select_or_best(est, self.policy.ber_target);
        if sel == self.active {
            return false;
        }
        let downshift = self
            .registry
            .get(sel)
            .cost(est)
            .cheaper_than(&self.registry.get(self.active).cost(est));
        self.events.push(SwitchEvent {
            frame,
            from: self.active,
            to: sel,
            est_es_n0_db: est,
            downshift,
        });
        self.current = self.registry.get(sel).demapper(est);
        self.active = sel;
        self.last_switch = frame;
        self.just_switched = true;
        // The estimator restarts: evidence gathered under the old
        // operating decision should not double-trigger.
        self.filled = 0;
        self.cursor = 0;
        true
    }
}

/// The self-equalizing receiver state: a per-link
/// [`EqualizedDemapper`] plus the per-frame mode trace. Pilots, when
/// the frame has any, feed the equalizer's supervised LMS update; the
/// payload always adapts unsupervised (CMA → DD-LMS), so the receiver
/// keeps re-converging on a drifting ISI channel with **zero** pilot
/// overhead when `pilot_symbols == 0`.
struct Equalized {
    demapper: EqualizedDemapper,
    mode_trace: Vec<EqualizerMode>,
}

enum Receiver {
    Fixed(Box<dyn Demapper>),
    Adaptive(Box<Adaptive>),
    Switching(Box<Switching>),
    Equalized(Box<Equalized>),
}

/// One link streaming frames through a scripted time-varying channel.
pub struct OnlineLink {
    spec: OnlineLinkSpec,
    constellation: Constellation,
    channel: TrajectoryChannel,
    receiver: Receiver,
    rng: Xoshiro256pp,
    code: ConvCode,
    viterbi: Viterbi,
    frame: u64,
    log: Vec<FrameRecord>,
    // Per-frame scratch, reused so streaming allocates nothing after
    // the first frame (matches the linksim discipline, DESIGN.md §7).
    tx_syms: Vec<usize>,
    block: Vec<C32>,
    llrs: Vec<f32>,
    tx_bits: Vec<u8>,
    rx_bits: Vec<u8>,
    info: Vec<u8>,
    // Pilot constellation points (the equalizer's supervised
    // reference; `block` holds channel output by the time it trains).
    pilot_pts: Vec<C32>,
}

impl OnlineLink {
    fn build(spec: OnlineLinkSpec, constellation: Constellation, receiver: Receiver) -> Self {
        let p = &spec.params;
        assert!(p.frame_symbols > 0, "frame length must be positive");
        assert!(
            p.pilot_symbols <= p.frame_symbols,
            "pilots cannot exceed the frame"
        );
        let m = constellation.bits_per_symbol();
        assert!(m <= 16, "bits per symbol > 16 unsupported");
        let demapper_m = match &receiver {
            Receiver::Fixed(d) => d.bits_per_symbol(),
            Receiver::Adaptive(a) => a.hybrid.bits_per_symbol(),
            Receiver::Switching(s) => s.current.bits_per_symbol(),
            Receiver::Equalized(e) => e.demapper.bits_per_symbol(),
        };
        assert_eq!(
            m, demapper_m,
            "constellation and demapper disagree on bits/symbol"
        );
        let payload_bits = (p.frame_symbols - p.pilot_symbols) * m;
        if p.monitor == Monitor::Ecc {
            assert!(
                payload_bits.is_multiple_of(2) && payload_bits / 2 > ConvCode::TAIL,
                "ECC monitoring needs an even payload capacity above the tail"
            );
        }
        // An adaptive receiver whose controller never sees evidence
        // can never trigger — reject the silent misconfiguration.
        if matches!(receiver, Receiver::Adaptive(_)) && p.monitor == Monitor::Pilot {
            assert!(
                p.pilot_symbols > 0,
                "pilot monitoring needs pilot_symbols > 0 (an adaptive \
                 receiver without evidence can never trigger)"
            );
        }
        // The switching receiver's SNR estimator is pilot-driven
        // unconditionally — same misconfiguration guard.
        if matches!(receiver, Receiver::Switching(_)) {
            assert!(
                p.pilot_symbols > 0,
                "backend switching needs pilot_symbols > 0 (the SNR \
                 estimator is data-aided from the pilot prefix)"
            );
        }
        let info_len = if p.monitor == Monitor::Ecc {
            payload_bits / 2 - ConvCode::TAIL
        } else {
            0
        };
        let n = p.frame_symbols;
        let pilots = p.pilot_symbols;
        let rng = Xoshiro256pp::stream(spec.seed, 0);
        let channel = TrajectoryChannel::new(spec.trajectory.clone(), n);
        Self {
            spec,
            constellation,
            channel,
            receiver,
            rng,
            code: ConvCode::new(),
            viterbi: Viterbi::new(),
            frame: 0,
            log: Vec::new(),
            tx_syms: vec![0; n],
            block: vec![C32::zero(); n],
            llrs: vec![0.0; n * m],
            tx_bits: vec![0; n * m],
            rx_bits: vec![0; n * m],
            info: vec![0; info_len],
            pilot_pts: vec![C32::zero(); pilots],
        }
    }

    /// A non-adapting receiver (the `static-conventional` and
    /// `frozen-ann` families): the demapper installed here serves the
    /// whole stream.
    ///
    /// # Panics
    /// Panics on constellation/demapper width mismatch or invalid
    /// frame geometry.
    pub fn fixed(
        spec: OnlineLinkSpec,
        constellation: Constellation,
        demapper: Box<dyn Demapper>,
    ) -> Self {
        Self::build(spec, constellation, Receiver::Fixed(demapper))
    }

    /// The adaptive hybrid receiver, cloned out of a pipeline that has
    /// already trained and extracted: per-link copies of the demapper
    /// ANN and centroid demapper, a fresh controller, and an initial
    /// integer deployment compiled at [`LinkParams::deploy_bits`].
    /// The retrainer/calibration seeds are re-derived from the link
    /// seed so shards are independent.
    ///
    /// # Panics
    /// Panics unless [`HybridPipeline::extract_centroids`] ran.
    pub fn adaptive(spec: OnlineLinkSpec, pipe: &HybridPipeline) -> Self {
        let hybrid_src = pipe
            .hybrid_demapper()
            .expect("adaptive link needs extracted centroids: run extract_centroids() first");
        let mut cfg = pipe.config().clone();
        cfg.seed = spec.seed;
        let constellation = pipe.constellation();
        let ann = NeuralDemapper::new(Sequential::from_snapshot(
            pipe.ann_demapper().model().snapshot(),
        ));
        let hybrid = HybridDemapper::from_centroids(hybrid_src.centroids().clone(), cfg.sigma());
        let deployment = compile_deployment(
            &constellation,
            ann.model(),
            cfg.sigma(),
            spec.params.deploy_bits,
            spec.seed,
        );
        let controller = AdaptationController::new(spec.params.thresholds);
        let adaptive = Adaptive {
            cfg,
            ann,
            hybrid,
            deployment,
            controller,
            pending: None,
            events: Vec::new(),
        };
        Self::build(spec, constellation, Receiver::Adaptive(Box::new(adaptive)))
    }

    /// The backend-switching receiver (`SwitchBackend` adaptation
    /// action): every frame, a data-aided SNR estimate from the pilot
    /// prefix drives [`BackendRegistry::select_or_best`] — the link
    /// rides the registry's cost ladder instead of retraining. The
    /// initial backend is selected at [`SwitchPolicy::initial_es_n0_db`];
    /// the transmit constellation is the registry's (every entry of a
    /// [`crate::registry::switch_registry`] shares it).
    ///
    /// # Panics
    /// Panics on an empty registry, on mixed constellation widths
    /// inside the registry, or when the spec has no pilot symbols.
    pub fn switching(
        spec: OnlineLinkSpec,
        registry: Arc<BackendRegistry>,
        policy: SwitchPolicy,
    ) -> Self {
        assert!(!registry.is_empty(), "switching needs ≥ 1 backend");
        assert!(policy.window_frames >= 1, "estimator window must be ≥ 1");
        assert!(
            policy.ber_target > 0.0 && policy.es_floor_db < policy.es_ceil_db,
            "degenerate switch policy"
        );
        let constellation = registry.iter().next().unwrap().1.constellation().clone();
        let active = registry.select_or_best(policy.initial_es_n0_db, policy.ber_target);
        let current = registry.get(active).demapper(policy.initial_es_n0_db);
        let switching = Switching {
            registry,
            policy,
            active,
            current,
            win_sig: vec![0.0; policy.window_frames],
            win_err: vec![0.0; policy.window_frames],
            filled: 0,
            cursor: 0,
            last_switch: 0,
            just_switched: false,
            trace: Vec::new(),
            events: Vec::new(),
        };
        Self::build(
            spec,
            constellation,
            Receiver::Switching(Box::new(switching)),
        )
    }

    /// The self-equalizing receiver: a linear FIR equalizer adapts
    /// ahead of `inner` every frame — supervised LMS on the pilot
    /// prefix when the frame has one, blind CMA → DD-LMS on the
    /// payload — so the link re-converges on drifting ISI channels
    /// without retraining and, at `pilot_symbols == 0`, without any
    /// pilot overhead (the group's unsupervised-equalizer story,
    /// arXiv 2304.06987). The equalizer instance is private to this
    /// link, keeping artefacts byte-identical at any thread count.
    ///
    /// # Panics
    /// Panics on constellation/demapper width mismatch, invalid frame
    /// geometry, or a degenerate equalizer config.
    pub fn equalized(
        spec: OnlineLinkSpec,
        constellation: Constellation,
        inner: Box<dyn Demapper>,
        eq_cfg: EqualizerConfig,
    ) -> Self {
        let eq = AdaptiveEqualizer::new(constellation.clone(), eq_cfg);
        let equalized = Equalized {
            demapper: EqualizedDemapper::new(Arc::from(inner), eq),
            mode_trace: Vec::new(),
        };
        Self::build(
            spec,
            constellation,
            Receiver::Equalized(Box::new(equalized)),
        )
    }

    /// The link spec.
    pub fn spec(&self) -> &OnlineLinkSpec {
        &self.spec
    }

    /// Frames streamed so far.
    pub fn frames(&self) -> u64 {
        self.frame
    }

    /// The per-frame event log.
    pub fn log(&self) -> &[FrameRecord] {
        &self.log
    }

    /// Completed trigger→swap cycles (empty for fixed and switching
    /// receivers).
    pub fn events(&self) -> &[RetrainEvent] {
        match &self.receiver {
            Receiver::Adaptive(a) => &a.events,
            _ => &[],
        }
    }

    /// Backend switches so far (empty for non-switching receivers).
    pub fn switch_events(&self) -> &[SwitchEvent] {
        match &self.receiver {
            Receiver::Switching(s) => &s.events,
            _ => &[],
        }
    }

    /// The live registry handle (switching receivers only).
    pub fn active_backend(&self) -> Option<BackendHandle> {
        match &self.receiver {
            Receiver::Switching(s) => Some(s.active),
            _ => None,
        }
    }

    /// Per-frame backend trace — `trace[f]` is the registry index
    /// that demapped frame `f` (empty for non-switching receivers).
    pub fn backend_trace(&self) -> &[u32] {
        match &self.receiver {
            Receiver::Switching(s) => &s.trace,
            _ => &[],
        }
    }

    /// Per-frame equalizer mode — `trace[f]` is the adaptation mode
    /// after frame `f` was equalized (empty for non-equalized
    /// receivers). The CMA→DD transition marks acquisition.
    pub fn equalizer_mode_trace(&self) -> &[EqualizerMode] {
        match &self.receiver {
            Receiver::Equalized(e) => &e.mode_trace,
            _ => &[],
        }
    }

    /// The live integer deployment (adaptive receivers only).
    pub fn deployment(&self) -> Option<&QuantizedGraph> {
        match &self.receiver {
            Receiver::Adaptive(a) => Some(&a.deployment),
            _ => None,
        }
    }

    /// The playback channel (frame position, current state).
    pub fn channel(&self) -> &TrajectoryChannel {
        &self.channel
    }

    /// Streams one frame; returns its log entry.
    pub fn step(&mut self) -> &FrameRecord {
        let frame = self.frame;
        let m = self.constellation.bits_per_symbol();
        let n = self.spec.params.frame_symbols;
        let p = self.spec.params.pilot_symbols;

        // 0. A matured retrain (or a backend switch decided on the
        // previous frame's evidence) enters the datapath here.
        let swapped = match &mut self.receiver {
            Receiver::Fixed(_) | Receiver::Equalized(_) => false,
            Receiver::Adaptive(a) => a.maybe_swap(frame),
            Receiver::Switching(s) => std::mem::take(&mut s.just_switched),
        };

        // 1. Frame construction: pilot prefix, then payload (uniform
        // symbols, or a convolutional codeword under ECC monitoring).
        for s in self.tx_syms.iter_mut().take(p) {
            *s = (self.rng.next_u64() >> (64 - m)) as usize;
        }
        if self.spec.params.monitor == Monitor::Ecc {
            self.rng.fill_bits(&mut self.info);
            let coded = self.code.encode(&self.info);
            for (k, chunk) in coded.chunks(m).enumerate() {
                self.tx_syms[p + k] = hybridem_comm::bits::pack_bits(chunk);
            }
        } else {
            for s in self.tx_syms.iter_mut().skip(p) {
                *s = (self.rng.next_u64() >> (64 - m)) as usize;
            }
        }
        for (i, (&u, y)) in self.tx_syms.iter().zip(self.block.iter_mut()).enumerate() {
            *y = self.constellation.point(u);
            for k in 0..m {
                self.tx_bits[i * m + k] = self.constellation.bit(u, k);
            }
        }
        self.channel.transmit(&mut self.block, &mut self.rng);

        // 2. One block demap for the whole frame. The equalized
        // receiver first adapts its FIR stage in place — supervised
        // LMS over the known pilot prefix, blind CMA/DD-LMS over the
        // payload — then demaps the equalized samples.
        if let Receiver::Equalized(e) = &mut self.receiver {
            for (pt, &u) in self.pilot_pts.iter_mut().zip(&self.tx_syms) {
                *pt = self.constellation.point(u);
            }
            let (block, pilot_pts) = (&mut self.block, &self.pilot_pts);
            let mode = e.demapper.with_equalizer(|eq| {
                if p > 0 {
                    eq.train(&mut block[..p], pilot_pts);
                }
                eq.equalize(&mut block[p..]);
                eq.mode()
            });
            e.mode_trace.push(mode);
            e.demapper.inner().demap_block(&self.block, &mut self.llrs);
        } else {
            let demapper: &dyn Demapper = match &self.receiver {
                Receiver::Fixed(d) => d.as_ref(),
                Receiver::Adaptive(a) => &a.hybrid,
                Receiver::Switching(s) => s.current.as_ref(),
                Receiver::Equalized(_) => unreachable!(),
            };
            demapper.demap_block(&self.block, &mut self.llrs);
        }
        for (b, &l) in self.rx_bits.iter_mut().zip(self.llrs.iter()) {
            *b = u8::from(l < 0.0);
        }

        // 3. Frame statistics.
        let count = |range: std::ops::Range<usize>| {
            self.tx_bits[range.clone()]
                .iter()
                .zip(&self.rx_bits[range])
                .filter(|(a, b)| a != b)
                .count() as u64
        };
        let pilot_errors = count(0..p * m);
        let payload_errors = count(p * m..n * m);
        let mut mi = BitwiseMiEstimator::new();
        for (&b, &l) in self.tx_bits[p * m..].iter().zip(&self.llrs[p * m..]) {
            mi.push(b, l);
        }

        // 4. Monitor + trigger.
        let mut triggered = false;
        if let Receiver::Switching(s) = &mut self.receiver {
            // The trace records who demapped *this* frame before the
            // decision runs — a switch takes effect next frame.
            s.trace.push(s.active.index() as u32);
            // Pilot energies for the SNR estimate, derotated by the
            // one-tap LS phase θ* = arg Σ y·x̄ (the phase minimising
            // Σ|y·e^{−jθ} − x|²): raw Σ|y − x|² counts any uncompensated
            // rotation/CFO as noise and drives spurious downshifts on
            // phase-impaired links. With θ* the error has the closed
            // form Σ|y|² + Σ|x|² − 2·|Σ y·x̄|.
            let mut sig = 0.0f64;
            let mut ysq = 0.0f64;
            let (mut cr, mut ci) = (0.0f64, 0.0f64);
            for i in 0..p {
                let x = self.constellation.point(self.tx_syms[i]);
                let y = self.block[i];
                sig += f64::from(x.re) * f64::from(x.re) + f64::from(x.im) * f64::from(x.im);
                ysq += f64::from(y.re) * f64::from(y.re) + f64::from(y.im) * f64::from(y.im);
                cr += f64::from(y.re) * f64::from(x.re) + f64::from(y.im) * f64::from(x.im);
                ci += f64::from(y.im) * f64::from(x.re) - f64::from(y.re) * f64::from(x.im);
            }
            // Rounding can push a noiseless frame epsilon-negative; an
            // err ≤ 0 frame saturates the estimate at the ceiling.
            let err = (ysq + sig - 2.0 * cr.hypot(ci)).max(0.0);
            triggered = s.observe_pilots(frame, sig, err);
        }
        if let Receiver::Adaptive(a) = &mut self.receiver {
            match self.spec.params.monitor {
                Monitor::Pilot => {
                    if p > 0 {
                        a.controller
                            .observe_pilot_bits(&self.tx_bits[..p * m], &self.rx_bits[..p * m]);
                    }
                }
                Monitor::Ecc => {
                    let outcome = self
                        .viterbi
                        .decode_soft(&self.code, &self.llrs[p * m..n * m]);
                    a.controller
                        .observe_ecc(outcome.corrected, (n - p) as u64 * m as u64);
                }
            }
            if a.pending.is_none() && a.controller.recommendation() == Recommendation::Retrain {
                triggered = true;
                a.on_trigger(frame, &self.constellation, &self.channel, &self.spec.params);
            }
        }

        self.log.push(FrameRecord {
            frame,
            payload_bits: ((n - p) * m) as u64,
            payload_bit_errors: payload_errors,
            pilot_bits: (p * m) as u64,
            pilot_bit_errors: pilot_errors,
            mi: mi.mi(),
            triggered,
            swapped,
        });
        self.frame += 1;
        self.log.last().unwrap()
    }

    /// Streams `frames` further frames (the trajectory holds its final
    /// state past the script).
    pub fn run_frames(&mut self, frames: u64) {
        for _ in 0..frames {
            self.step();
        }
    }

    /// Streams the whole scripted trajectory.
    pub fn run(&mut self) {
        while self.frame < self.spec.trajectory.total_frames() {
            self.step();
        }
    }
}

// ---------------------------------------------------------------------
// Drift campaign: families × scenarios × links, pooled per frame.
// ---------------------------------------------------------------------

/// How a family relates to the drift expectations of a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FamilyRole {
    /// Conventional reference receiver — no recovery claims attached.
    Baseline,
    /// Trained but never-retrained receiver — carries the scenario's
    /// `frozen_recovers` expectation.
    Frozen,
    /// The full adapt/retrain loop — carries `adaptive_recovers`.
    Adaptive,
    /// Self-equalizing receiver ([`OnlineLink::equalized`]) — carries
    /// `adaptive_recovers` like [`FamilyRole::Adaptive`], but converges
    /// in the datapath: no retrain events are ever expected of it.
    Equalized,
}

/// One receiver family of a drift campaign. `build` constructs a fresh
/// link for `(trajectory, link_seed)`; it runs on the campaign's
/// shard workers, so captured state is shared read-only.
pub struct DriftFamily<'a> {
    /// Family label used in artefacts.
    pub name: String,
    /// Which recovery expectation applies.
    pub role: FamilyRole,
    /// Link factory.
    pub build: LinkBuilder<'a>,
}

/// Builds one link for `(trajectory, link_seed)` (see [`DriftFamily`]).
pub type LinkBuilder<'a> = Box<dyn Fn(&Trajectory, u64) -> OnlineLink + Sync + 'a>;

/// One drift scenario: the script plus the recovery expectations the
/// artefact validation enforces.
#[derive(Clone, Debug)]
pub struct DriftScenario {
    /// The scripted channel.
    pub trajectory: Trajectory,
    /// Frames of the pre-drift baseline window `[0, baseline_frames)`.
    pub baseline_frames: u64,
    /// First frame at which the scripted disturbance is over (the
    /// recovery clock starts here).
    pub drift_end_frame: u64,
    /// Whether the adaptive family must re-converge (`None` ⇒ no
    /// claim, e.g. fading that retraining cannot track).
    pub adaptive_recovers: Option<bool>,
    /// Whether the frozen family recovers on its own (`Some(false)`
    /// for persistent impairments — the paper's core claim).
    pub frozen_recovers: Option<bool>,
}

/// The scripted drift suite of the `drift_runtime` artefact, at a
/// given nominal Es/N0 (dB): SNR ramp, the paper's π/4 phase step, a
/// CFO drift pulse (leaving a persistent accumulated rotation), fading
/// onset, burst interference, and the frequency-selective pair —
/// a persistent two-ray ISI onset and a clearing ISI pulse.
pub fn drift_suite(es_n0_db: f64) -> Vec<DriftScenario> {
    let clean = ChannelState::clean(es_n0_db);
    let dip = ChannelState::clean(es_n0_db - 6.0);
    vec![
        DriftScenario {
            trajectory: Trajectory::new("snr-ramp")
                .hold(40, clean)
                .ramp(30, dip)
                .hold(30, dip)
                .ramp(30, clean)
                .hold(90, clean),
            baseline_frames: 40,
            drift_end_frame: 130,
            adaptive_recovers: Some(true),
            frozen_recovers: Some(true),
        },
        DriftScenario {
            trajectory: Trajectory::new("phase-step")
                .hold(40, clean)
                .hold(160, clean.with_phase(std::f32::consts::FRAC_PI_4)),
            baseline_frames: 40,
            drift_end_frame: 40,
            adaptive_recovers: Some(true),
            frozen_recovers: Some(false),
        },
        DriftScenario {
            // 4.5e-5 rad/sym × 30 frames × 256 symbols ≈ 0.346 rad of
            // accumulated rotation that persists after the rate
            // returns to zero.
            trajectory: Trajectory::new("cfo-drift")
                .hold(40, clean)
                .hold(30, clean.with_cfo(4.5e-5))
                .hold(170, clean),
            baseline_frames: 40,
            drift_end_frame: 70,
            adaptive_recovers: Some(true),
            frozen_recovers: Some(false),
        },
        DriftScenario {
            // Per-coherence-block fading is not a constellation shift:
            // retraining cannot track it, so no recovery claims.
            trajectory: Trajectory::new("fading-onset")
                .hold(40, clean)
                .hold(120, clean.with_fading(64)),
            baseline_frames: 40,
            drift_end_frame: 40,
            adaptive_recovers: None,
            frozen_recovers: None,
        },
        DriftScenario {
            trajectory: Trajectory::new("burst-interference")
                .hold(40, clean)
                .hold(20, clean.with_interference(0.35))
                .hold(140, clean),
            baseline_frames: 40,
            drift_end_frame: 60,
            adaptive_recovers: Some(true),
            frozen_recovers: Some(true),
        },
        DriftScenario {
            // A two-ray echo appears and stays. ISI is channel
            // *memory*: no memoryless demapper — retrained or not —
            // can undo it, so no recovery claims attach here (like
            // fading-onset). The equalized receiver's re-convergence
            // claim on this exact onset lives in the equalizer bench.
            trajectory: Trajectory::new("isi-onset")
                .hold(40, clean)
                .hold(120, clean.with_taps(Taps::two_ray(0.4, 0.35, 1))),
            baseline_frames: 40,
            drift_end_frame: 40,
            adaptive_recovers: None,
            frozen_recovers: None,
        },
        DriftScenario {
            // The echo clears again: once the channel is memoryless
            // all families are back on known ground, so both recovery
            // claims apply.
            trajectory: Trajectory::new("isi-pulse")
                .hold(40, clean)
                .hold(30, clean.with_taps(Taps::two_ray(0.4, 0.35, 1)))
                .hold(130, clean),
            baseline_frames: 40,
            drift_end_frame: 70,
            adaptive_recovers: Some(true),
            frozen_recovers: Some(true),
        },
    ]
}

/// The paper's receiver line-up as drift families: conventional Gray
/// QAM max-log, the frozen trained ANN, and the adaptive hybrid.
///
/// # Panics
/// Panics unless [`HybridPipeline::extract_centroids`] ran.
pub fn drift_families<'a>(pipe: &'a HybridPipeline, params: &LinkParams) -> Vec<DriftFamily<'a>> {
    assert!(
        pipe.hybrid_demapper().is_some(),
        "drift families need extracted centroids: run extract_centroids() first"
    );
    // The two fixed families come straight out of the shared backend
    // registry, pinned byte-identical to the hand-built demappers they
    // replaced (tests/registry_determinism.rs): at es = the config's
    // Es/N0, `conventional` builds max-log with the same σ as
    // `SystemConfig::sigma()`, and `AE-inference` shares a snapshot
    // round-trip of the trained network.
    let registry = paper_registry(pipe, &SoftDemapperConfig::paper_default(), &[]);
    let es = pipe.config().es_n0_db();
    let stock = |name: &str| {
        registry
            .get(registry.find(name).expect("stock backend"))
            .clone()
    };
    let conv = stock("conventional");
    let ann = stock("AE-inference");
    let spec = {
        let params = params.clone();
        move |traj: &Trajectory, seed: u64| OnlineLinkSpec {
            trajectory: traj.clone(),
            seed,
            params: params.clone(),
        }
    };
    let conv_spec = spec.clone();
    let frozen_spec = spec.clone();
    vec![
        DriftFamily {
            name: "static-conventional".to_string(),
            role: FamilyRole::Baseline,
            build: Box::new(move |traj, seed| {
                OnlineLink::fixed(
                    conv_spec(traj, seed),
                    conv.constellation().clone(),
                    Box::new(conv.demapper(es)),
                )
            }),
        },
        DriftFamily {
            name: "frozen-ann".to_string(),
            role: FamilyRole::Frozen,
            build: Box::new(move |traj, seed| {
                OnlineLink::fixed(
                    frozen_spec(traj, seed),
                    ann.constellation().clone(),
                    Box::new(ann.demapper(es)),
                )
            }),
        },
        DriftFamily {
            name: "adaptive-hybrid".to_string(),
            role: FamilyRole::Adaptive,
            build: Box::new(move |traj, seed| OnlineLink::adaptive(spec(traj, seed), pipe)),
        },
    ]
}

/// A full drift campaign: families × scenarios × independent links.
pub struct DriftCampaignSpec<'a> {
    /// Campaign label recorded in the artefact.
    pub name: String,
    /// Receiver families (matrix rows).
    pub families: Vec<DriftFamily<'a>>,
    /// Drift scenarios (matrix columns).
    pub scenarios: Vec<DriftScenario>,
    /// Independent links per (family, scenario) cell.
    pub links: u32,
    /// Shared link parameters (recorded in the artefact; the families
    /// built by [`drift_families`] use the same set).
    pub params: LinkParams,
    /// Base seed; per-link seeds are derived deterministically.
    pub seed: u64,
}

/// One retrain event of one link, as serialised in the artefact.
#[derive(Clone, Debug)]
pub struct RetrainEventRecord {
    /// Link index within the cell.
    pub link: u32,
    /// Frame at which the controller fired.
    pub trigger_frame: u64,
    /// Frame at which the retrained demapper entered the datapath.
    pub swap_frame: u64,
    /// Modelled retrain latency in frames.
    pub latency_frames: u64,
}

hybridem_mathkit::impl_to_json!(RetrainEventRecord {
    link,
    trigger_frame,
    swap_frame,
    latency_frames,
});

impl FromJson for RetrainEventRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            link: u32::from_json(v.field("link")?)?,
            trigger_frame: u64::from_json(v.field("trigger_frame")?)?,
            swap_frame: u64::from_json(v.field("swap_frame")?)?,
            latency_frames: u64::from_json(v.field("latency_frames")?)?,
        })
    }
}

/// One (family, scenario) cell: per-frame statistics pooled across the
/// cell's links in link order.
#[derive(Clone, Debug)]
pub struct DriftRow {
    /// Family label.
    pub family: String,
    /// Family role (`"baseline"`, `"frozen"`, `"adaptive"`).
    pub role: String,
    /// Scenario label.
    pub trajectory: String,
    /// Scripted frames.
    pub frames: u64,
    /// Links pooled into this row.
    pub links: u32,
    /// Pre-drift baseline window length in frames.
    pub baseline_frames: u64,
    /// First post-disturbance frame.
    pub drift_end_frame: u64,
    /// The recovery expectation this row is validated against.
    pub expect_recovery: Option<bool>,
    /// Whether validation additionally requires ≥ 1 retrain event.
    pub expect_retrain: bool,
    /// Payload bits per frame, pooled across links.
    pub payload_bits_per_frame: u64,
    /// Pooled payload bit errors per frame.
    pub bit_errors: Vec<u64>,
    /// Pooled payload BER per frame (`bit_errors / payload bits`).
    pub ber: Vec<f64>,
    /// Pooled pilot BER per frame.
    pub pilot_ber: Vec<f64>,
    /// Mean bitwise MI per frame across links (link-order mean).
    pub mi: Vec<f64>,
    /// Every link's trigger→swap cycles.
    pub retrain_events: Vec<RetrainEventRecord>,
    /// Total retrains across the cell's links.
    pub retrains: u64,
}

hybridem_mathkit::impl_to_json!(DriftRow {
    family,
    role,
    trajectory,
    frames,
    links,
    baseline_frames,
    drift_end_frame,
    expect_recovery,
    expect_retrain,
    payload_bits_per_frame,
    bit_errors,
    ber,
    pilot_ber,
    mi,
    retrain_events,
    retrains,
});

impl FromJson for DriftRow {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            family: String::from_json(v.field("family")?)?,
            role: String::from_json(v.field("role")?)?,
            trajectory: String::from_json(v.field("trajectory")?)?,
            frames: u64::from_json(v.field("frames")?)?,
            links: u32::from_json(v.field("links")?)?,
            baseline_frames: u64::from_json(v.field("baseline_frames")?)?,
            drift_end_frame: u64::from_json(v.field("drift_end_frame")?)?,
            expect_recovery: Option::<bool>::from_json(v.field("expect_recovery")?)?,
            expect_retrain: bool::from_json(v.field("expect_retrain")?)?,
            payload_bits_per_frame: u64::from_json(v.field("payload_bits_per_frame")?)?,
            bit_errors: Vec::<u64>::from_json(v.field("bit_errors")?)?,
            ber: Vec::<f64>::from_json(v.field("ber")?)?,
            pilot_ber: Vec::<f64>::from_json(v.field("pilot_ber")?)?,
            mi: Vec::<f64>::from_json(v.field("mi")?)?,
            retrain_events: Vec::<RetrainEventRecord>::from_json(v.field("retrain_events")?)?,
            retrains: u64::from_json(v.field("retrains")?)?,
        })
    }
}

impl DriftRow {
    /// Pooled payload BER over the frame window `[from, to)`.
    pub fn window_ber(&self, from: u64, to: u64) -> f64 {
        assert!(from <= to && to <= self.frames, "window out of range");
        let errors: u64 = self.bit_errors[from as usize..to as usize].iter().sum();
        let bits = self.payload_bits_per_frame * (to - from);
        if bits == 0 {
            0.0
        } else {
            errors as f64 / bits as f64
        }
    }
}

/// Post-drift steady-state window (frames) used by the recovery
/// validation: the claim is judged on the *last* `RECOVERY_WINDOW`
/// frames of the row, i.e. recovery must complete within
/// `frames − drift_end_frame − RECOVERY_WINDOW` frames of the
/// disturbance ending.
pub const RECOVERY_WINDOW: u64 = 30;

/// The drift-runtime artefact (`drift_runtime.json`): execution
/// parameters + one row per (family, scenario) cell, JSON round-trip
/// and self-validation mirroring
/// [`hybridem_comm::campaign::CampaignReport`].
#[derive(Clone, Debug)]
pub struct DriftRuntimeReport {
    /// Campaign label.
    pub name: String,
    /// Base seed the artefact is a pure function of.
    pub seed: u64,
    /// Links per cell.
    pub links: u32,
    /// Symbols per frame.
    pub frame_symbols: u64,
    /// Pilot symbols per frame.
    pub pilot_symbols: u64,
    /// Modelled symbol rate (symbols/s) behind the latency accounting.
    pub symbol_rate: f64,
    /// Width of the recompiled integer deployments.
    pub deploy_bits: u32,
    /// One row per cell, in matrix order.
    pub rows: Vec<DriftRow>,
}

hybridem_mathkit::impl_to_json!(DriftRuntimeReport {
    name,
    seed,
    links,
    frame_symbols,
    pilot_symbols,
    symbol_rate,
    deploy_bits,
    rows,
});

impl FromJson for DriftRuntimeReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: String::from_json(v.field("name")?)?,
            seed: u64::from_json(v.field("seed")?)?,
            links: u32::from_json(v.field("links")?)?,
            frame_symbols: u64::from_json(v.field("frame_symbols")?)?,
            pilot_symbols: u64::from_json(v.field("pilot_symbols")?)?,
            symbol_rate: f64::from_json(v.field("symbol_rate")?)?,
            deploy_bits: u32::from_json(v.field("deploy_bits")?)?,
            rows: Vec::<DriftRow>::from_json(v.field("rows")?)?,
        })
    }
}

impl DriftRuntimeReport {
    /// Schema/invariant validation of a (re-loaded) artefact: vector
    /// lengths match the frame count, rates are finite and consistent
    /// with their counts, events lie inside the stream. Returns the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.links == 0 {
            return Err("links must be positive".to_string());
        }
        if self.frame_symbols == 0 {
            return Err("frame_symbols must be positive".to_string());
        }
        for (i, r) in self.rows.iter().enumerate() {
            let ctx = |msg: String| format!("row {i} ({}/{}): {msg}", r.family, r.trajectory);
            for (label, len) in [
                ("bit_errors", r.bit_errors.len()),
                ("ber", r.ber.len()),
                ("pilot_ber", r.pilot_ber.len()),
                ("mi", r.mi.len()),
            ] {
                if len as u64 != r.frames {
                    return Err(ctx(format!(
                        "{label} has {len} entries for {} frames",
                        r.frames
                    )));
                }
            }
            if r.links != self.links {
                return Err(ctx("row link count differs from campaign".to_string()));
            }
            if r.payload_bits_per_frame == 0 {
                return Err(ctx("payload_bits_per_frame must be positive".to_string()));
            }
            for (f, (&e, &b)) in r.bit_errors.iter().zip(&r.ber).enumerate() {
                if e > r.payload_bits_per_frame {
                    return Err(ctx(format!("frame {f}: more errors than bits")));
                }
                let expect = e as f64 / r.payload_bits_per_frame as f64;
                if !b.is_finite() || (b - expect).abs() > 1e-12 {
                    return Err(ctx(format!(
                        "frame {f}: ber {b} inconsistent with count {e}"
                    )));
                }
            }
            if r.pilot_ber.iter().any(|x| !(0.0..=1.0).contains(x))
                || r.mi.iter().any(|x| !x.is_finite())
            {
                return Err(ctx("non-finite or out-of-range rate".to_string()));
            }
            if r.expect_recovery.is_some()
                && (r.baseline_frames == 0
                    || r.drift_end_frame + RECOVERY_WINDOW > r.frames
                    || r.baseline_frames > r.drift_end_frame)
            {
                return Err(ctx("windows do not fit the stream".to_string()));
            }
            if r.retrains != r.retrain_events.len() as u64 {
                return Err(ctx(
                    "retrains count disagrees with the event list".to_string()
                ));
            }
            for e in &r.retrain_events {
                if e.link >= r.links
                    || e.trigger_frame > e.swap_frame
                    || e.swap_frame >= r.frames
                    || e.swap_frame - e.trigger_frame != e.latency_frames
                {
                    return Err(ctx(format!("inconsistent retrain event {e:?}")));
                }
            }
        }
        Ok(())
    }

    /// Validates the drift claims themselves: every row carrying an
    /// expectation must (fail to) re-converge as scripted — the
    /// adaptive family within 2× of its pre-drift BER over the final
    /// [`RECOVERY_WINDOW`], a non-recovering frozen family at ≥ 4× —
    /// and rows flagged `expect_retrain` must log at least one
    /// trigger→swap cycle.
    pub fn validate_recovery(&self) -> Result<(), String> {
        for r in &self.rows {
            let ctx = |msg: String| format!("{}/{}: {msg}", r.family, r.trajectory);
            let Some(want) = r.expect_recovery else {
                continue;
            };
            // Same window bounds `validate()` enforces, re-checked
            // here so calling this gate alone on a malformed artefact
            // reports the violation instead of panicking.
            if r.baseline_frames == 0
                || r.baseline_frames > r.frames
                || r.frames < RECOVERY_WINDOW
                || r.bit_errors.len() as u64 != r.frames
            {
                return Err(ctx("windows do not fit the stream".to_string()));
            }
            let base = r.window_ber(0, r.baseline_frames);
            let post = r.window_ber(r.frames - RECOVERY_WINDOW, r.frames);
            if want {
                if post > 2.0 * base + 2e-3 {
                    return Err(ctx(format!(
                        "must re-converge: post-drift BER {post:.3e} vs baseline {base:.3e}"
                    )));
                }
            } else if post < 4.0 * base + 2e-3 {
                return Err(ctx(format!(
                    "must stay degraded: post-drift BER {post:.3e} vs baseline {base:.3e}"
                )));
            }
            if r.expect_retrain && r.retrains == 0 {
                return Err(ctx("expected at least one retrain event".to_string()));
            }
        }
        Ok(())
    }

    /// Renders one summary line per row as a Markdown table.
    pub fn markdown_table(&self) -> String {
        let mut s = String::from(
            "| Family | Trajectory | baseline BER | worst BER | final BER | retrains |\n\
             |---|---|---|---|---|---|\n",
        );
        for r in &self.rows {
            let base = r.window_ber(0, r.baseline_frames.max(1));
            let worst = r.ber.iter().copied().fold(0.0f64, f64::max);
            let tail_from = r.frames.saturating_sub(RECOVERY_WINDOW.min(r.frames));
            let tail = r.window_ber(tail_from, r.frames);
            s.push_str(&format!(
                "| {} | {} | {:.3e} | {:.3e} | {:.3e} | {} |\n",
                r.family, r.trajectory, base, worst, tail, r.retrains
            ));
        }
        s
    }
}

fn link_seed(base: u64, family: usize, scenario: usize, link: u32) -> u64 {
    let cell = ((family as u64) << 42) | ((scenario as u64) << 21) | u64::from(link);
    SplitMix64::derive(base, cell)
}

/// Runs the campaign: every (family, scenario) cell shards its links
/// over a [`ShardRunner`] (per-link seed, RNG stream and state) and
/// pools per-frame counts in link order, so the report is a pure
/// function of `(spec, seed)` — independent of `HYBRIDEM_THREADS`.
pub fn run_drift_campaign(spec: &DriftCampaignSpec<'_>) -> DriftRuntimeReport {
    assert!(!spec.families.is_empty(), "campaign needs ≥ 1 family");
    assert!(!spec.scenarios.is_empty(), "campaign needs ≥ 1 scenario");
    assert!(spec.links > 0, "campaign needs ≥ 1 link per cell");
    let mut rows = Vec::with_capacity(spec.families.len() * spec.scenarios.len());
    for (fi, family) in spec.families.iter().enumerate() {
        for (si, sc) in spec.scenarios.iter().enumerate() {
            let frames = sc.trajectory.total_frames() as usize;
            // Adaptive links are expensive to build (model-snapshot
            // restore, boundary calibration, graph compile), so
            // construction happens on the shard workers too — each
            // slot is a pure function of its index, preserving the
            // byte-identical artefact.
            let mut runner: ShardRunner<Option<OnlineLink>> =
                ShardRunner::new(spec.links, |_| None);
            runner.run_round(|i, slot| {
                let mut link = (family.build)(&sc.trajectory, link_seed(spec.seed, fi, si, i));
                link.run();
                *slot = Some(link);
            });

            let mut bit_errors = vec![0u64; frames];
            let mut pilot_errors = vec![0u64; frames];
            let mut mi_sum = vec![0f64; frames];
            let mut payload_bits = 0u64;
            let mut pilot_bits = 0u64;
            let mut retrain_events = Vec::new();
            for (li, slot) in runner.states().iter().enumerate() {
                let link = slot.as_ref().expect("every shard built its link");
                assert_eq!(link.log().len(), frames, "link streamed the whole script");
                for rec in link.log() {
                    let f = rec.frame as usize;
                    bit_errors[f] += rec.payload_bit_errors;
                    pilot_errors[f] += rec.pilot_bit_errors;
                    mi_sum[f] += rec.mi;
                    if li == 0 && f == 0 {
                        payload_bits = rec.payload_bits * u64::from(spec.links);
                        pilot_bits = rec.pilot_bits * u64::from(spec.links);
                    }
                }
                for e in link.events() {
                    retrain_events.push(RetrainEventRecord {
                        link: li as u32,
                        trigger_frame: e.trigger_frame,
                        swap_frame: e.swap_frame,
                        latency_frames: e.latency_frames,
                    });
                }
            }
            let ber: Vec<f64> = bit_errors
                .iter()
                .map(|&e| e as f64 / payload_bits.max(1) as f64)
                .collect();
            let pilot_ber: Vec<f64> = pilot_errors
                .iter()
                .map(|&e| {
                    if pilot_bits == 0 {
                        0.0
                    } else {
                        e as f64 / pilot_bits as f64
                    }
                })
                .collect();
            let mi: Vec<f64> = mi_sum.iter().map(|&s| s / f64::from(spec.links)).collect();
            let expect_recovery = match family.role {
                FamilyRole::Baseline => None,
                FamilyRole::Frozen => sc.frozen_recovers,
                FamilyRole::Adaptive | FamilyRole::Equalized => sc.adaptive_recovers,
            };
            let expect_retrain = family.role == FamilyRole::Adaptive
                && sc.adaptive_recovers == Some(true)
                && sc.frozen_recovers == Some(false);
            rows.push(DriftRow {
                family: family.name.clone(),
                role: match family.role {
                    FamilyRole::Baseline => "baseline",
                    FamilyRole::Frozen => "frozen",
                    FamilyRole::Adaptive => "adaptive",
                    FamilyRole::Equalized => "equalized",
                }
                .to_string(),
                trajectory: sc.trajectory.name.clone(),
                frames: frames as u64,
                links: spec.links,
                baseline_frames: sc.baseline_frames,
                drift_end_frame: sc.drift_end_frame,
                expect_recovery,
                expect_retrain,
                payload_bits_per_frame: payload_bits,
                bit_errors,
                ber,
                pilot_ber,
                mi,
                retrains: retrain_events.len() as u64,
                retrain_events,
            });
        }
    }
    DriftRuntimeReport {
        name: spec.name.clone(),
        seed: spec.seed,
        links: spec.links,
        frame_symbols: spec.params.frame_symbols as u64,
        pilot_symbols: spec.params.pilot_symbols as u64,
        symbol_rate: spec.params.symbol_rate,
        deploy_bits: spec.params.deploy_bits,
        rows,
    }
}

// ---------------------------------------------------------------------
// Backend-switch campaign: one registry, many links, per-frame traces.
// ---------------------------------------------------------------------

/// A backend-switching campaign: independent [`OnlineLink::switching`]
/// links riding one scripted trajectory over one shared registry.
pub struct SwitchCampaignSpec {
    /// Campaign label recorded in the artefact.
    pub name: String,
    /// The backend line-up every link selects from.
    pub registry: Arc<BackendRegistry>,
    /// The scripted channel (shared by every link).
    pub trajectory: Trajectory,
    /// Independent links.
    pub links: u32,
    /// Shared link parameters.
    pub params: LinkParams,
    /// Shared switch policy.
    pub policy: SwitchPolicy,
    /// Base seed; per-link seeds are derived deterministically.
    pub seed: u64,
}

/// One backend switch of one link, as serialised in the artefact.
#[derive(Clone, Debug)]
pub struct SwitchEventRecord {
    /// Link index.
    pub link: u32,
    /// Frame whose evidence triggered the switch.
    pub frame: u64,
    /// Registry index demapping up to and including `frame`.
    pub from: u32,
    /// Registry index demapping from `frame + 1`.
    pub to: u32,
    /// The SNR estimate (Es/N0 dB) behind the decision.
    pub est_es_n0_db: f64,
    /// True when the switch moved to a cheaper backend.
    pub downshift: bool,
}

hybridem_mathkit::impl_to_json!(SwitchEventRecord {
    link,
    frame,
    from,
    to,
    est_es_n0_db,
    downshift,
});

impl FromJson for SwitchEventRecord {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            link: u32::from_json(v.field("link")?)?,
            frame: u64::from_json(v.field("frame")?)?,
            from: u32::from_json(v.field("from")?)?,
            to: u32::from_json(v.field("to")?)?,
            est_es_n0_db: f64::from_json(v.field("est_es_n0_db")?)?,
            downshift: bool::from_json(v.field("downshift")?)?,
        })
    }
}

/// One link of the backend-switch artefact: the per-frame backend
/// trace, per-frame payload errors, and the switch log.
#[derive(Clone, Debug)]
pub struct SwitchLinkRow {
    /// Link index.
    pub link: u32,
    /// `active[f]` = registry index that demapped frame `f`.
    pub active: Vec<u32>,
    /// Payload bit errors per frame.
    pub bit_errors: Vec<u64>,
    /// Switches to a cheaper backend.
    pub downshifts: u64,
    /// Switches to a costlier backend.
    pub upshifts: u64,
    /// The link's switch log, in frame order.
    pub events: Vec<SwitchEventRecord>,
}

hybridem_mathkit::impl_to_json!(SwitchLinkRow {
    link,
    active,
    bit_errors,
    downshifts,
    upshifts,
    events,
});

impl FromJson for SwitchLinkRow {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            link: u32::from_json(v.field("link")?)?,
            active: Vec::<u32>::from_json(v.field("active")?)?,
            bit_errors: Vec::<u64>::from_json(v.field("bit_errors")?)?,
            downshifts: u64::from_json(v.field("downshifts")?)?,
            upshifts: u64::from_json(v.field("upshifts")?)?,
            events: Vec::<SwitchEventRecord>::from_json(v.field("events")?)?,
        })
    }
}

/// The backend-switch artefact (`backend_switch.json`): the registry's
/// backend table plus one row per link — a pure function of
/// `(spec, seed)`, byte-identical at any `HYBRIDEM_THREADS`.
#[derive(Clone, Debug)]
pub struct BackendSwitchReport {
    /// Campaign label.
    pub name: String,
    /// Base seed.
    pub seed: u64,
    /// Links in the campaign.
    pub links: u32,
    /// Scripted frames per link.
    pub frames: u64,
    /// Symbols per frame.
    pub frame_symbols: u64,
    /// Pilot symbols per frame (the SNR estimator's evidence).
    pub pilot_symbols: u64,
    /// The selection rule's BER target.
    pub ber_target: f64,
    /// Registry names, indexed by the `active`/`from`/`to` fields.
    pub backends: Vec<String>,
    /// Registry index selected at the policy's initial operating point.
    pub initial_backend: u32,
    /// One row per link, in link order.
    pub rows: Vec<SwitchLinkRow>,
    /// Total switches to cheaper backends across links.
    pub downshifts: u64,
    /// Total switches to costlier backends across links.
    pub upshifts: u64,
}

hybridem_mathkit::impl_to_json!(BackendSwitchReport {
    name,
    seed,
    links,
    frames,
    frame_symbols,
    pilot_symbols,
    ber_target,
    backends,
    initial_backend,
    rows,
    downshifts,
    upshifts,
});

impl FromJson for BackendSwitchReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: String::from_json(v.field("name")?)?,
            seed: u64::from_json(v.field("seed")?)?,
            links: u32::from_json(v.field("links")?)?,
            frames: u64::from_json(v.field("frames")?)?,
            frame_symbols: u64::from_json(v.field("frame_symbols")?)?,
            pilot_symbols: u64::from_json(v.field("pilot_symbols")?)?,
            ber_target: f64::from_json(v.field("ber_target")?)?,
            backends: Vec::<String>::from_json(v.field("backends")?)?,
            initial_backend: u32::from_json(v.field("initial_backend")?)?,
            rows: Vec::<SwitchLinkRow>::from_json(v.field("rows")?)?,
            downshifts: u64::from_json(v.field("downshifts")?)?,
            upshifts: u64::from_json(v.field("upshifts")?)?,
        })
    }
}

impl BackendSwitchReport {
    /// Schema/invariant validation of a (re-loaded) artefact: trace
    /// and error vectors span the stream, every index resolves in the
    /// backend table, the trace is consistent with the event log
    /// (each event flips `active` at its frame boundary, nothing else
    /// does), and the shift counters match the events they summarise.
    pub fn validate(&self) -> Result<(), String> {
        if self.links == 0 {
            return Err("links must be positive".to_string());
        }
        if self.backends.is_empty() {
            return Err("backend table must not be empty".to_string());
        }
        if u64::from(self.initial_backend) >= self.backends.len() as u64 {
            return Err("initial_backend outside the backend table".to_string());
        }
        if self.rows.len() as u64 != u64::from(self.links) {
            return Err("one row per link required".to_string());
        }
        let (mut down, mut up) = (0u64, 0u64);
        for (i, r) in self.rows.iter().enumerate() {
            let ctx = |msg: String| format!("link {i}: {msg}");
            if r.link != i as u32 {
                return Err(ctx("rows must be in link order".to_string()));
            }
            if r.active.len() as u64 != self.frames || r.bit_errors.len() as u64 != self.frames {
                return Err(ctx("trace length differs from the stream".to_string()));
            }
            if r.active.first() != Some(&self.initial_backend) {
                return Err(ctx("trace must start on the initial backend".to_string()));
            }
            if r.active
                .iter()
                .any(|&a| u64::from(a) >= self.backends.len() as u64)
            {
                return Err(ctx("trace index outside the backend table".to_string()));
            }
            let (mut rd, mut ru) = (0u64, 0u64);
            let mut at = 0usize;
            for (f, w) in r.active.windows(2).enumerate() {
                if w[0] == w[1] {
                    continue;
                }
                let Some(e) = r.events.get(at) else {
                    return Err(ctx(format!("trace flips at frame {f} without an event")));
                };
                if e.link != r.link
                    || e.frame != f as u64
                    || e.from != w[0]
                    || e.to != w[1]
                    || e.from == e.to
                    || !e.est_es_n0_db.is_finite()
                {
                    return Err(ctx(format!("event {at} inconsistent with the trace")));
                }
                if e.downshift {
                    rd += 1;
                } else {
                    ru += 1;
                }
                at += 1;
            }
            // A trailing event may land on the last frame: the switch
            // was decided but the stream ended before it demapped.
            for e in &r.events[at..] {
                if e.frame + 1 != self.frames || e.from == e.to {
                    return Err(ctx(format!("dangling event {e:?}")));
                }
                if e.downshift {
                    rd += 1;
                } else {
                    ru += 1;
                }
            }
            if rd != r.downshifts || ru != r.upshifts {
                return Err(ctx("shift counters disagree with the event log".to_string()));
            }
            down += rd;
            up += ru;
        }
        if down != self.downshifts || up != self.upshifts {
            return Err("campaign shift totals disagree with the rows".to_string());
        }
        Ok(())
    }

    /// Validates the scenario's claim: the campaign exercised the
    /// cost ladder in **both** directions — at least one downshift
    /// and at least one upshift somewhere across the links.
    pub fn validate_switching(&self) -> Result<(), String> {
        if self.downshifts == 0 {
            return Err("expected ≥ 1 downshift to a cheaper backend".to_string());
        }
        if self.upshifts == 0 {
            return Err("expected ≥ 1 upshift back to a costlier backend".to_string());
        }
        Ok(())
    }

    /// Renders one summary line per link as a Markdown table.
    pub fn markdown_table(&self) -> String {
        let mut s = String::from(
            "| Link | switches | downshifts | upshifts | backends visited |\n|---|---|---|---|---|\n",
        );
        for r in &self.rows {
            let mut visited: Vec<&str> = Vec::new();
            for &a in &r.active {
                let name = self.backends[a as usize].as_str();
                if visited.last() != Some(&name) {
                    visited.push(name);
                }
            }
            s.push_str(&format!(
                "| {} | {} | {} | {} | {} |\n",
                r.link,
                r.events.len(),
                r.downshifts,
                r.upshifts,
                visited.join(" → ")
            ));
        }
        s
    }
}

/// Runs a backend-switch campaign: links shard over a [`ShardRunner`]
/// (per-link seed and state), rows are collected in link order — the
/// artefact is a pure function of `(spec, seed)`, independent of
/// `HYBRIDEM_THREADS`.
pub fn run_switch_campaign(spec: &SwitchCampaignSpec) -> BackendSwitchReport {
    assert!(spec.links > 0, "campaign needs ≥ 1 link");
    assert!(!spec.registry.is_empty(), "campaign needs ≥ 1 backend");
    let frames = spec.trajectory.total_frames();
    let initial = spec
        .registry
        .select_or_best(spec.policy.initial_es_n0_db, spec.policy.ber_target);
    let mut runner: ShardRunner<Option<OnlineLink>> = ShardRunner::new(spec.links, |_| None);
    runner.run_round(|i, slot| {
        let link_spec = OnlineLinkSpec {
            trajectory: spec.trajectory.clone(),
            seed: link_seed(spec.seed, 0, 0, i),
            params: spec.params.clone(),
        };
        let mut link = OnlineLink::switching(link_spec, spec.registry.clone(), spec.policy);
        link.run();
        *slot = Some(link);
    });
    let mut rows = Vec::with_capacity(spec.links as usize);
    let (mut downshifts, mut upshifts) = (0u64, 0u64);
    for (li, slot) in runner.states().iter().enumerate() {
        let link = slot.as_ref().expect("every shard built its link");
        assert_eq!(link.frames(), frames, "link streamed the whole script");
        let events: Vec<SwitchEventRecord> = link
            .switch_events()
            .iter()
            .map(|e| SwitchEventRecord {
                link: li as u32,
                frame: e.frame,
                from: e.from.index() as u32,
                to: e.to.index() as u32,
                est_es_n0_db: e.est_es_n0_db,
                downshift: e.downshift,
            })
            .collect();
        let down = events.iter().filter(|e| e.downshift).count() as u64;
        let up = events.len() as u64 - down;
        downshifts += down;
        upshifts += up;
        rows.push(SwitchLinkRow {
            link: li as u32,
            active: link.backend_trace().to_vec(),
            bit_errors: link.log().iter().map(|r| r.payload_bit_errors).collect(),
            downshifts: down,
            upshifts: up,
            events,
        });
    }
    BackendSwitchReport {
        name: spec.name.clone(),
        seed: spec.seed,
        links: spec.links,
        frames,
        frame_symbols: spec.params.frame_symbols as u64,
        pilot_symbols: spec.params.pilot_symbols as u64,
        ber_target: spec.policy.ber_target,
        backends: spec.registry.names(),
        initial_backend: initial.index() as u32,
        rows,
        downshifts,
        upshifts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Backend, BackendCost};
    use hybridem_comm::demapper::MaxLogMap;
    use hybridem_comm::snr::noise_sigma;

    fn noiseless_spec(frames: u64, seed: u64) -> OnlineLinkSpec {
        OnlineLinkSpec::new(
            Trajectory::constant("clean", ChannelState::clean(f64::INFINITY), frames),
            seed,
        )
    }

    fn qam_link(spec: OnlineLinkSpec) -> OnlineLink {
        let qam = Constellation::qam_gray(16);
        let demapper = MaxLogMap::new(qam.clone(), 0.14);
        OnlineLink::fixed(spec, qam, Box::new(demapper))
    }

    #[test]
    fn noiseless_fixed_link_is_error_free() {
        let mut link = qam_link(noiseless_spec(5, 3));
        link.run();
        assert_eq!(link.frames(), 5);
        assert_eq!(link.log().len(), 5);
        for rec in link.log() {
            assert_eq!(rec.payload_bit_errors, 0);
            assert_eq!(rec.pilot_bit_errors, 0);
            assert_eq!(rec.payload_bits, (256 - 64) * 4);
            assert!(rec.mi > 0.999, "clean LLRs carry the full bit: {}", rec.mi);
            assert!(!rec.triggered && !rec.swapped);
        }
        assert!(link.events().is_empty());
        assert!(link.deployment().is_none());
    }

    #[test]
    fn fixed_link_replays_deterministically() {
        let run = || {
            let mut spec = noiseless_spec(4, 9);
            spec.trajectory = Trajectory::constant("awgn", ChannelState::clean(10.0), 4);
            let mut link = qam_link(spec);
            link.run();
            link.log()
                .iter()
                .map(|r| (r.payload_bit_errors, r.mi.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ecc_monitor_decodes_cleanly_on_a_matched_link() {
        let mut spec = noiseless_spec(3, 5);
        spec.params.monitor = Monitor::Ecc;
        let mut link = qam_link(spec);
        link.run();
        for rec in link.log() {
            assert_eq!(rec.payload_bit_errors, 0, "noiseless coded payload");
        }
    }

    #[test]
    fn pilot_only_frames_are_supported() {
        let mut spec = noiseless_spec(2, 1);
        spec.params.pilot_symbols = spec.params.frame_symbols;
        let mut link = qam_link(spec);
        link.run();
        for rec in link.log() {
            assert_eq!(rec.payload_bits, 0);
            assert_eq!(rec.ber(), 0.0, "zero-payload contract: never NaN");
        }
    }

    #[test]
    #[should_panic(expected = "disagree on bits/symbol")]
    fn mismatched_widths_rejected() {
        let qam = Constellation::qam_gray(16);
        let wrong = MaxLogMap::new(Constellation::qam_gray(4), 0.1);
        let _ = OnlineLink::fixed(noiseless_spec(1, 0), qam, Box::new(wrong));
    }

    fn tiny_pipeline() -> HybridPipeline {
        // fast_test budgets land the hybrid at ≈ 3 % clean BER — good
        // enough to separate clean from π/4-broken with the loosened
        // thresholds below, cheap enough for debug-mode tests.
        let mut cfg = SystemConfig::fast_test();
        cfg.retrain_steps = 80;
        cfg.grid_n = 48;
        let mut pipe = HybridPipeline::new(cfg);
        let _ = pipe.e2e_train();
        let _ = pipe.extract_centroids();
        pipe
    }

    /// Thresholds sized for the weak test AE: clean (≈ 3 %) must not
    /// trigger, π/4-broken (≈ 25 %) must, on one frame of evidence.
    fn test_thresholds() -> AdaptThresholds {
        AdaptThresholds {
            ber_retrain: 0.12,
            ber_healthy: 0.05,
            min_observations: 256,
            ..AdaptThresholds::default()
        }
    }

    #[test]
    fn adaptive_link_triggers_on_phase_step_and_swaps() {
        let pipe = tiny_pipeline();
        let es = pipe.config().es_n0_db();
        let trajectory = Trajectory::new("step")
            .hold(4, ChannelState::clean(es))
            .hold(
                80,
                ChannelState::clean(es).with_phase(std::f32::consts::FRAC_PI_4),
            );
        let mut spec = OnlineLinkSpec::new(trajectory, 77);
        spec.params.thresholds = test_thresholds();
        let mut link = OnlineLink::adaptive(spec, &pipe);
        let probe = C32::new(0.55, -0.35);
        let before = link.deployment().unwrap().process_iq(probe);
        link.run();
        assert!(!link.events().is_empty(), "π/4 step must trigger a retrain");
        let e = link.events()[0];
        assert!(e.trigger_frame >= 4, "no trigger on the clean prefix");
        assert!(e.latency_frames >= 1 && e.sim_time_s > 0.0);
        // The swap really replaced both demappers: the recompiled
        // integer deployment answers differently.
        let after = link.deployment().unwrap().process_iq(probe);
        assert_ne!(before, after, "deployment must be recompiled on swap");
        let broken: f64 = link.log()[e.trigger_frame as usize].ber();
        let healed: f64 = link.log().last().unwrap().ber();
        assert!(
            healed < broken * 0.5,
            "retrained datapath must beat the stale one: {broken} → {healed}"
        );
    }

    #[test]
    fn log_only_action_records_triggers_without_retraining() {
        let pipe = tiny_pipeline();
        let es = pipe.config().es_n0_db();
        let trajectory = Trajectory::constant(
            "offset",
            ChannelState::clean(es).with_phase(std::f32::consts::FRAC_PI_4),
            40,
        );
        let mut spec = OnlineLinkSpec::new(trajectory, 13);
        spec.params.action = TriggerAction::LogOnly;
        spec.params.thresholds = test_thresholds();
        let mut link = OnlineLink::adaptive(spec, &pipe);
        while link.frames() < 40 && link.events().is_empty() {
            link.step();
        }
        assert!(!link.events().is_empty(), "offset must be detected");
        assert_eq!(link.events()[0].latency_frames, 0);
        // LogOnly never swaps: the stream stays broken.
        link.run();
        assert!(link.log().last().unwrap().ber() > 0.1);
    }

    #[test]
    fn drift_campaign_pools_links_and_round_trips_json() {
        use hybridem_mathkit::json::ToJson;
        let qam = Constellation::qam_gray(16);
        let sigma = 0.2f32;
        let scenarios = vec![DriftScenario {
            trajectory: Trajectory::constant("awgn", ChannelState::clean(12.0), 6),
            baseline_frames: 2,
            drift_end_frame: 2,
            adaptive_recovers: None,
            frozen_recovers: None,
        }];
        let qam2 = qam.clone();
        let families = vec![DriftFamily {
            name: "maxlog".to_string(),
            role: FamilyRole::Baseline,
            build: Box::new(move |traj, seed| {
                OnlineLink::fixed(
                    OnlineLinkSpec::new(traj.clone(), seed),
                    qam2.clone(),
                    Box::new(MaxLogMap::new(qam2.clone(), sigma)),
                )
            }),
        }];
        let spec = DriftCampaignSpec {
            name: "mini".to_string(),
            families,
            scenarios,
            links: 3,
            params: LinkParams::default(),
            seed: 11,
        };
        let report = run_drift_campaign(&spec);
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.frames, 6);
        assert_eq!(row.payload_bits_per_frame, 3 * (256 - 64) * 4);
        report.validate().expect("artefact invariants");
        let text = report.to_json().to_string_pretty();
        let back = DriftRuntimeReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        back.validate().expect("reloaded artefact invariants");
        assert_eq!(back.to_json().to_string_pretty(), text);
    }

    #[test]
    fn link_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for f in 0..3 {
            for s in 0..5 {
                for l in 0..8 {
                    assert!(seen.insert(link_seed(7, f, s, l)));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "pilot monitoring needs pilot_symbols")]
    fn adaptive_pilot_monitor_without_pilots_rejected() {
        // An untrained pipeline is enough: extraction falls back to
        // the learned constellation, and the assert fires at build.
        let mut pipe = HybridPipeline::new(SystemConfig::fast_test());
        let _ = pipe.extract_centroids();
        let mut spec = noiseless_spec(1, 0);
        spec.params.pilot_symbols = 0;
        let _ = OnlineLink::adaptive(spec, &pipe);
    }

    /// A synthetic backend with a step-function BER model: meets any
    /// sane target at/above `ok_above_db`, hopeless below — gives the
    /// switching tests exact control of the selection threshold.
    struct FakeBackend {
        name: &'static str,
        tx: Constellation,
        cycles: f64,
        ok_above_db: f64,
    }

    impl Backend for FakeBackend {
        fn name(&self) -> &str {
            self.name
        }
        fn constellation(&self) -> &Constellation {
            &self.tx
        }
        fn demapper(&self, es_n0_db: f64) -> Arc<dyn Demapper> {
            Arc::new(MaxLogMap::new(
                self.tx.clone(),
                noise_sigma(es_n0_db, 1.0) as f32,
            ))
        }
        fn cost(&self, _es_n0_db: f64) -> BackendCost {
            BackendCost {
                cycles_per_symbol: self.cycles,
                energy_per_symbol_j: 1e-9 * self.cycles,
            }
        }
        fn predicted_ber(&self, es_n0_db: f64) -> f64 {
            if es_n0_db >= self.ok_above_db {
                1e-3
            } else {
                1.0
            }
        }
    }

    /// Two-entry registry: an always-accurate 16-cycle fallback and a
    /// 2-cycle backend that only works from 15 dB Es/N0 up.
    fn fake_registry() -> Arc<BackendRegistry> {
        let qam = Constellation::qam_gray(16);
        let mut reg = BackendRegistry::new();
        reg.register(Arc::new(FakeBackend {
            name: "precise",
            tx: qam.clone(),
            cycles: 16.0,
            ok_above_db: f64::NEG_INFINITY,
        }));
        reg.register(Arc::new(FakeBackend {
            name: "cheap",
            tx: qam,
            cycles: 2.0,
            ok_above_db: 15.0,
        }));
        Arc::new(reg)
    }

    fn switch_policy() -> SwitchPolicy {
        SwitchPolicy {
            ber_target: 1e-2,
            window_frames: 4,
            min_dwell_frames: 4,
            initial_es_n0_db: 10.0,
            ..SwitchPolicy::default()
        }
    }

    fn up_down_trajectory() -> Trajectory {
        Trajectory::new("up-down")
            .hold(15, ChannelState::clean(10.0))
            .hold(30, ChannelState::clean(20.0))
            .hold(30, ChannelState::clean(10.0))
    }

    #[test]
    fn switching_link_rides_the_snr_ramp_both_ways() {
        let reg = fake_registry();
        let precise = reg.find("precise").unwrap();
        let cheap = reg.find("cheap").unwrap();
        let spec = OnlineLinkSpec::new(up_down_trajectory(), 21);
        let mut link = OnlineLink::switching(spec, reg, switch_policy());
        assert_eq!(link.active_backend(), Some(precise));
        link.run();
        let events = link.switch_events();
        assert!(events.len() >= 2, "one switch each way: {events:?}");
        let down = events.iter().find(|e| e.downshift).expect("a downshift");
        assert_eq!((down.from, down.to), (precise, cheap));
        assert!(down.est_es_n0_db >= 15.0, "downshift needs SNR headroom");
        let up = events.iter().find(|e| !e.downshift).expect("an upshift");
        assert_eq!((up.from, up.to), (cheap, precise));
        assert!(up.frame > down.frame, "upshift follows the SNR drop");
        // Trace bookkeeping: who demapped each frame, switch visible
        // one frame after its decision, `swapped` flagged there.
        let trace = link.backend_trace();
        assert_eq!(trace.len() as u64, link.frames());
        assert_eq!(trace[down.frame as usize] as usize, precise.index());
        assert_eq!(trace[down.frame as usize + 1] as usize, cheap.index());
        assert!(link.log()[down.frame as usize + 1].swapped);
        assert!(link.log()[down.frame as usize].triggered);
        assert!(link.events().is_empty(), "no retrain events on switching");
        assert!(link.deployment().is_none());
    }

    fn log_window_ber(link: &OnlineLink, from: u64, to: u64) -> f64 {
        let (mut bits, mut errs) = (0u64, 0u64);
        for r in &link.log()[from as usize..to as usize] {
            bits += r.payload_bits;
            errs += r.payload_bit_errors;
        }
        errs as f64 / bits as f64
    }

    #[test]
    fn equalized_link_reconverges_blind_where_fixed_stays_broken() {
        // The isi-onset scenario attaches no recovery claims to the
        // memoryless families; the equalized receiver is the one that
        // earns them — with zero pilot symbols.
        let es = 12.0;
        let sc = drift_suite(es)
            .into_iter()
            .find(|s| s.trajectory.name == "isi-onset")
            .expect("isi-onset in the suite");
        let qam = Constellation::qam_gray(4);
        let sigma = noise_sigma(es, 1.0) as f32;
        let params = LinkParams {
            pilot_symbols: 0, // fully blind
            ..Default::default()
        };
        let spec = OnlineLinkSpec {
            trajectory: sc.trajectory.clone(),
            seed: 9,
            params,
        };
        let mut eq = OnlineLink::equalized(
            spec.clone(),
            qam.clone(),
            Box::new(MaxLogMap::new(qam.clone(), sigma)),
            EqualizerConfig::default(),
        );
        eq.run();
        let mut fixed = OnlineLink::fixed(spec, qam.clone(), Box::new(MaxLogMap::new(qam, sigma)));
        fixed.run();
        let frames = eq.frames();
        let base = log_window_ber(&eq, 0, sc.baseline_frames);
        let eq_post = log_window_ber(&eq, frames - RECOVERY_WINDOW, frames);
        let fixed_post = log_window_ber(&fixed, frames - RECOVERY_WINDOW, frames);
        assert!(
            eq_post <= 2.0 * base + 2e-3,
            "equalized link failed to re-converge: base {base:.2e}, post {eq_post:.2e}"
        );
        assert!(
            fixed_post >= 4.0 * base + 2e-3,
            "unequalized link unexpectedly fine: base {base:.2e}, post {fixed_post:.2e}"
        );
        // The blind loop acquired: CMA handed off to decision-directed
        // tracking by the end of the stream.
        let trace = eq.equalizer_mode_trace();
        assert_eq!(trace.len() as u64, frames);
        assert_eq!(*trace.last().unwrap(), EqualizerMode::DecisionDirected);
        assert!(eq.events().is_empty() && eq.switch_events().is_empty());
    }

    #[test]
    fn equalized_link_is_a_pure_function_of_spec_and_seed() {
        let qam = Constellation::qam_gray(4);
        let traj = Trajectory::constant(
            "isi",
            ChannelState::clean(12.0).with_taps(Taps::two_ray(0.4, 0.35, 1)),
            25,
        );
        let run = || {
            let params = LinkParams {
                pilot_symbols: 32, // exercise the supervised path too
                ..Default::default()
            };
            let spec = OnlineLinkSpec {
                trajectory: traj.clone(),
                seed: 4,
                params,
            };
            let mut link = OnlineLink::equalized(
                spec,
                qam.clone(),
                Box::new(MaxLogMap::new(qam.clone(), noise_sigma(12.0, 1.0) as f32)),
                EqualizerConfig::default(),
            );
            link.run();
            link.log()
                .iter()
                .map(|r| (r.payload_bit_errors, r.pilot_bit_errors))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn phase_offset_does_not_masquerade_as_noise_in_snr_estimate() {
        // Regression: the estimator once accumulated raw Σ|y−x|², so a
        // noiseless π/4-rotated link measured |e^{jπ/4}−1|²·Es of fake
        // "noise" (≈ 2.3 dB Es/N0) and pinned itself to the accurate
        // backend. With the one-tap LS derotation the same link is
        // error-free: the estimate saturates at the policy ceiling and
        // the selection downshifts to the cheap backend.
        let reg = fake_registry();
        let precise = reg.find("precise").unwrap();
        let cheap = reg.find("cheap").unwrap();
        let traj = Trajectory::constant(
            "pure-phase",
            ChannelState::clean(f64::INFINITY).with_phase(std::f32::consts::FRAC_PI_4),
            30,
        );
        let policy = switch_policy();
        let ceiling = policy.es_ceil_db;
        let mut link = OnlineLink::switching(OnlineLinkSpec::new(traj, 33), reg, policy);
        assert_eq!(link.active_backend(), Some(precise));
        link.run();
        let down = link
            .switch_events()
            .iter()
            .find(|e| e.downshift)
            .expect("noiseless rotated link must earn the cheap backend");
        assert_eq!((down.from, down.to), (precise, cheap));
        assert_eq!(
            down.est_es_n0_db, ceiling,
            "noiseless link must estimate at the policy ceiling, not a \
             rotation-inflated floor"
        );
    }

    #[test]
    fn switch_campaign_round_trips_json_and_is_deterministic() {
        use hybridem_mathkit::json::ToJson;
        let run = || {
            let spec = SwitchCampaignSpec {
                name: "mini-switch".to_string(),
                registry: fake_registry(),
                trajectory: up_down_trajectory(),
                links: 3,
                params: LinkParams::default(),
                policy: switch_policy(),
                seed: 5,
            };
            run_switch_campaign(&spec)
        };
        let report = run();
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.frames, 75);
        assert_eq!(report.backends, vec!["precise", "cheap"]);
        assert_eq!(report.initial_backend, 0);
        report.validate().expect("artefact invariants");
        report.validate_switching().expect("both shift directions");
        let text = report.to_json().to_string_pretty();
        let back = BackendSwitchReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        back.validate().expect("reloaded artefact invariants");
        assert_eq!(back.to_json().to_string_pretty(), text);
        assert_eq!(run().to_json().to_string_pretty(), text, "pure function");
        let md = report.markdown_table();
        assert!(md.contains("precise → cheap → precise"), "{md}");
    }

    #[test]
    fn switch_validate_rejects_trace_event_mismatch() {
        let report = run_switch_campaign(&SwitchCampaignSpec {
            name: "tamper".to_string(),
            registry: fake_registry(),
            trajectory: up_down_trajectory(),
            links: 1,
            params: LinkParams::default(),
            policy: switch_policy(),
            seed: 5,
        });
        let mut tampered = report.clone();
        tampered.rows[0].events.clear();
        tampered.rows[0].downshifts = 0;
        tampered.rows[0].upshifts = 0;
        tampered.downshifts = 0;
        tampered.upshifts = 0;
        let err = tampered.validate().unwrap_err();
        assert!(err.contains("without an event"), "{err}");
    }

    #[test]
    #[should_panic(expected = "needs pilot_symbols > 0")]
    fn switching_without_pilots_rejected() {
        let mut spec = OnlineLinkSpec::new(up_down_trajectory(), 0);
        spec.params.pilot_symbols = 0;
        let _ = OnlineLink::switching(spec, fake_registry(), switch_policy());
    }

    #[test]
    fn validate_recovery_reports_malformed_windows_instead_of_panicking() {
        // A row with a recovery claim but fewer frames than the
        // recovery window must yield Err from the claim gate alone
        // (no prior validate() call).
        let report = DriftRuntimeReport {
            name: "bad".to_string(),
            seed: 0,
            links: 1,
            frame_symbols: 256,
            pilot_symbols: 64,
            symbol_rate: 1e6,
            deploy_bits: 8,
            rows: vec![DriftRow {
                family: "adaptive-hybrid".to_string(),
                role: "adaptive".to_string(),
                trajectory: "truncated".to_string(),
                frames: 5,
                links: 1,
                baseline_frames: 2,
                drift_end_frame: 2,
                expect_recovery: Some(true),
                expect_retrain: false,
                payload_bits_per_frame: 768,
                bit_errors: vec![0; 5],
                ber: vec![0.0; 5],
                pilot_ber: vec![0.0; 5],
                mi: vec![0.0; 5],
                retrain_events: Vec::new(),
                retrains: 0,
            }],
        };
        let err = report.validate_recovery().unwrap_err();
        assert!(err.contains("windows do not fit"), "{err}");
    }
}
