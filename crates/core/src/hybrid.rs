//! The hybrid demapper: extracted centroids + conventional max-log.
//!
//! After extraction, inference runs entirely through the conventional
//! suboptimal soft demapper on the extracted centroid set — the ANN is
//! no longer in the data path. [`HybridDemapper`] is the software
//! reference; [`HybridDemapper::to_hardware`] instantiates the FPGA
//! accelerator design for it.

use crate::extraction::ExtractionReport;
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::{Demapper, MaxLogMap};
use hybridem_fpga::builder::{build_soft_demapper_design, SoftDemapperDesign};
use hybridem_fpga::demapper_accel::SoftDemapperConfig;
use hybridem_mathkit::complex::C32;

/// Max-log demapping over extracted centroids.
pub struct HybridDemapper {
    maxlog: MaxLogMap,
    sigma: f32,
}

impl HybridDemapper {
    /// Builds from an extraction report and the operating noise level.
    pub fn from_extraction(report: &ExtractionReport, sigma: f32) -> Self {
        Self::from_centroids(report.centroid_constellation(), sigma)
    }

    /// Builds from an explicit centroid constellation.
    pub fn from_centroids(centroids: Constellation, sigma: f32) -> Self {
        Self {
            maxlog: MaxLogMap::new(centroids, sigma),
            sigma,
        }
    }

    /// The centroid set in use.
    pub fn centroids(&self) -> &Constellation {
        self.maxlog.constellation()
    }

    /// Operating noise level.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }

    /// Swaps in freshly extracted centroids (after retraining).
    pub fn update_centroids(&mut self, report: &ExtractionReport) {
        self.maxlog
            .set_constellation(report.centroid_constellation());
    }

    /// Instantiates the FPGA accelerator for this demapper.
    pub fn to_hardware(&self, cfg: SoftDemapperConfig) -> SoftDemapperDesign {
        build_soft_demapper_design(self.centroids().points(), self.sigma, cfg)
    }
}

impl Demapper for HybridDemapper {
    fn bits_per_symbol(&self) -> usize {
        self.maxlog.bits_per_symbol()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        self.maxlog.llrs(y, out);
    }

    fn demap_block(&self, ys: &[C32], out: &mut [f32]) {
        // Forward to the inner block kernel: the hybrid demapper adds
        // no per-symbol work of its own.
        self.maxlog.demap_block(ys, out);
    }

    fn hard_decide_block(&self, ys: &[C32], out: &mut [u8]) {
        self.maxlog.hard_decide_block(ys, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delegates_to_maxlog() {
        let qam = Constellation::qam_gray(16);
        let hybrid = HybridDemapper::from_centroids(qam.clone(), 0.2);
        let reference = MaxLogMap::new(qam.clone(), 0.2);
        let mut a = [0f32; 4];
        let mut b = [0f32; 4];
        let y = C32::new(0.4, -0.1);
        hybrid.llrs(y, &mut a);
        reference.llrs(y, &mut b);
        assert_eq!(a, b);
        assert_eq!(hybrid.bits_per_symbol(), 4);
    }

    #[test]
    fn centroid_update_changes_decisions() {
        let qam = Constellation::qam_gray(16);
        let mut hybrid = HybridDemapper::from_centroids(qam.clone(), 0.2);
        let y = qam.point(5);
        let mut before = [0u8; 4];
        hybrid.hard_decide(y, &mut before);
        // Swap in a rotated set via a synthetic report-less path.
        hybrid
            .maxlog
            .set_constellation(qam.rotated(std::f32::consts::FRAC_PI_2));
        let mut after = [0u8; 4];
        hybrid.hard_decide(y, &mut after);
        assert_ne!(before, after, "90° rotation must change decisions");
    }

    #[test]
    fn hardware_design_reports_one_dsp() {
        let qam = Constellation::qam_gray(16);
        let hybrid = HybridDemapper::from_centroids(qam, 0.2);
        let hw = hybrid.to_hardware(SoftDemapperConfig::paper_default());
        let report = hw.report(&hybridem_fpga::power::PowerModel::default());
        assert_eq!(report.usage.dsp, 1);
        assert!(report.power_w < 0.1);
    }
}
