//! System configuration.
//!
//! One [`SystemConfig`] describes an entire experiment: modulation
//! order, network topology, training hyper-parameters, channel
//! settings and extraction grid. The paper's SNR axis is interpreted
//! as **Eb/N0 in dB** (validated against Table 1's baseline BERs in
//! `hybridem-comm::theory`); conversions to noise σ happen here so
//! every component agrees.

use hybridem_comm::snr::{ebn0_to_esn0_db, noise_sigma};
use hybridem_mathkit::json::{FromJson, Json, JsonError};
use hybridem_nn::model::MlpSpec;

/// Full experiment configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Bits per symbol (4 = the paper's 16-QAM order).
    pub bits_per_symbol: usize,
    /// Demapper topology.
    pub demapper: MlpSpec,
    /// SNR in dB (Eb/N0 — the paper's axis).
    pub snr_db: f64,
    /// E2E training steps.
    pub e2e_steps: usize,
    /// Retraining steps (demapper only).
    pub retrain_steps: usize,
    /// Mini-batch size in symbols.
    pub batch_size: usize,
    /// Adam learning rate for E2E training.
    pub e2e_lr: f32,
    /// Adam learning rate for retraining.
    pub retrain_lr: f32,
    /// Extraction grid resolution (cells per axis).
    pub grid_n: usize,
    /// Extraction window half-width as a multiple of the largest
    /// constellation coordinate (4/3 keeps outer-cell mass centroids
    /// unbiased on square lattices — see `extraction`).
    pub window_scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's case-study configuration (16-QAM order, 2→16→16→4
    /// demapper, full-length training).
    pub fn paper_default() -> Self {
        Self {
            bits_per_symbol: 4,
            demapper: MlpSpec::paper_demapper_logits(),
            snr_db: 8.0,
            e2e_steps: 4000,
            retrain_steps: 1500,
            batch_size: 256,
            e2e_lr: 5e-3,
            retrain_lr: 5e-3,
            grid_n: 192,
            window_scale: 4.0 / 3.0,
            seed: 0xAE_2022,
        }
    }

    /// A reduced configuration for fast unit/doc tests (small budgets,
    /// coarse grid — still trains to a usable demapper at 8 dB).
    pub fn fast_test() -> Self {
        Self {
            e2e_steps: 600,
            retrain_steps: 400,
            batch_size: 128,
            grid_n: 64,
            ..Self::paper_default()
        }
    }

    /// Constellation size `M = 2^m`.
    pub fn num_symbols(&self) -> usize {
        1 << self.bits_per_symbol
    }

    /// Es/N0 in dB for the configured Eb/N0.
    pub fn es_n0_db(&self) -> f64 {
        ebn0_to_esn0_db(self.snr_db, self.bits_per_symbol)
    }

    /// Per-dimension AWGN σ at unit symbol energy.
    pub fn sigma(&self) -> f32 {
        noise_sigma(self.es_n0_db(), 1.0) as f32
    }

    /// The same configuration at a different SNR (for sweeps).
    pub fn at_snr(&self, snr_db: f64) -> Self {
        Self {
            snr_db,
            ..self.clone()
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) {
        assert!(self.bits_per_symbol >= 1 && self.bits_per_symbol <= 8);
        assert_eq!(
            self.demapper.dims.first(),
            Some(&2),
            "demapper input must be 2 (I/Q)"
        );
        assert_eq!(
            self.demapper.dims.last(),
            Some(&self.bits_per_symbol),
            "demapper output must equal bits/symbol"
        );
        assert!(self.grid_n >= 16, "extraction grid too coarse");
        assert!(
            self.window_scale > 1.0,
            "window must extend beyond the constellation"
        );
        assert!(self.batch_size >= 16);
    }
}

hybridem_mathkit::impl_to_json!(SystemConfig {
    bits_per_symbol,
    demapper,
    snr_db,
    e2e_steps,
    retrain_steps,
    batch_size,
    e2e_lr,
    retrain_lr,
    grid_n,
    window_scale,
    seed,
});

impl FromJson for SystemConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            bits_per_symbol: usize::from_json(v.field("bits_per_symbol")?)?,
            demapper: MlpSpec::from_json(v.field("demapper")?)?,
            snr_db: f64::from_json(v.field("snr_db")?)?,
            e2e_steps: usize::from_json(v.field("e2e_steps")?)?,
            retrain_steps: usize::from_json(v.field("retrain_steps")?)?,
            batch_size: usize::from_json(v.field("batch_size")?)?,
            e2e_lr: f32::from_json(v.field("e2e_lr")?)?,
            retrain_lr: f32::from_json(v.field("retrain_lr")?)?,
            grid_n: usize::from_json(v.field("grid_n")?)?,
            window_scale: f64::from_json(v.field("window_scale")?)?,
            seed: u64::from_json(v.field("seed")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid_16qam() {
        let c = SystemConfig::paper_default();
        c.validate();
        assert_eq!(c.num_symbols(), 16);
        assert_eq!(c.demapper.mac_count(), 352);
    }

    #[test]
    fn snr_conversion_matches_comm() {
        let c = SystemConfig::paper_default().at_snr(8.0);
        // Eb/N0 8 dB, 4 bits ⇒ Es/N0 ≈ 14.02 dB.
        assert!((c.es_n0_db() - 14.0206).abs() < 1e-3);
        let sigma = c.sigma() as f64;
        let expect = noise_sigma(14.0206, 1.0);
        assert!((sigma - expect).abs() < 1e-6);
    }

    #[test]
    fn at_snr_only_changes_snr() {
        let a = SystemConfig::paper_default();
        let b = a.at_snr(-2.0);
        assert_eq!(b.snr_db, -2.0);
        assert_eq!(a.e2e_steps, b.e2e_steps);
        assert_eq!(a.seed, b.seed);
    }

    #[test]
    fn fast_test_is_valid() {
        SystemConfig::fast_test().validate();
    }

    #[test]
    #[should_panic(expected = "demapper output")]
    fn inconsistent_width_rejected() {
        let mut c = SystemConfig::paper_default();
        c.bits_per_symbol = 6;
        c.validate();
    }

    #[test]
    fn json_round_trip() {
        let c = SystemConfig::paper_default();
        let json = hybridem_mathkit::json::to_string(&c);
        let back: SystemConfig = hybridem_mathkit::json::from_str(&json).unwrap();
        assert_eq!(back.snr_db, c.snr_db);
        assert_eq!(back.demapper, c.demapper);
        assert_eq!(back.seed, c.seed);
    }
}
