//! Receiver-side retraining (paper step 2).
//!
//! The mapper constellation is frozen (no feedback channel needed);
//! only the demapper retrains, from pilot transmissions through the
//! *actual* channel — the paper's case study uses AWGN plus a π/4
//! phase offset. Optionally every step is charged against the FPGA
//! trainer cost model, reproducing the "retraining on the board"
//! scenario with simulated time and energy.

use crate::config::SystemConfig;
use crate::demapper_ann::NeuralDemapper;
use hybridem_comm::channel::Channel;
use hybridem_comm::constellation::Constellation;
use hybridem_fpga::power::PowerModel;
use hybridem_fpga::trainer::{TrainerConfig, TrainerDesign, TrainerEngine};
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::rng::{Rng64, Xoshiro256pp};
use hybridem_nn::loss::bce_with_logits;
use hybridem_nn::optim::Optimizer;
use hybridem_nn::Adam;

/// Outcome of a retraining run.
#[derive(Clone, Debug)]
pub struct RetrainReport {
    /// Loss after the final step.
    pub final_loss: f32,
    /// Loss before the first update (how broken the channel was).
    pub initial_loss: f32,
    /// Steps executed.
    pub steps: usize,
    /// Simulated on-chip training time (s), when hardware accounting
    /// was enabled.
    pub sim_time_s: Option<f64>,
    /// Simulated on-chip energy (J).
    pub sim_energy_j: Option<f64>,
}

/// Demapper-only retrainer.
pub struct Retrainer {
    cfg: SystemConfig,
    rng: Xoshiro256pp,
    opt: Adam,
    /// Charge steps against the FPGA trainer model when set.
    hardware: Option<(TrainerDesign, PowerModel)>,
}

impl Retrainer {
    /// New retrainer (pure software).
    pub fn new(cfg: &SystemConfig) -> Self {
        Self {
            rng: Xoshiro256pp::stream(cfg.seed, 2),
            opt: Adam::new(cfg.retrain_lr),
            hardware: None,
            cfg: cfg.clone(),
        }
    }

    /// Enables FPGA cost accounting with the paper's trainer design.
    pub fn with_hardware_accounting(mut self) -> Self {
        self.hardware = Some((
            TrainerDesign::new(TrainerConfig::paper_default()),
            PowerModel::default(),
        ));
        self
    }

    /// Retrains `demapper` against `channel`, transmitting pilot
    /// symbols from the frozen `constellation`.
    pub fn run(
        &mut self,
        constellation: &Constellation,
        channel: &mut dyn Channel,
        demapper: &mut NeuralDemapper,
    ) -> RetrainReport {
        let m = constellation.bits_per_symbol();
        let b = self.cfg.batch_size;
        let steps = self.cfg.retrain_steps;
        let mut engine = self
            .hardware
            .as_ref()
            .map(|(design, power)| TrainerEngine::new(design, power.clone()));

        let mut initial_loss = f32::NAN;
        let mut final_loss = f32::NAN;
        let mut pilots = vec![C32::zero(); b];
        for step in 0..steps {
            // Pilot block: known random symbols through the live channel.
            let mut targets = Matrix::zeros(b, m);
            let mut indices = vec![0usize; b];
            for (r, idx) in indices.iter_mut().enumerate() {
                *idx = (self.rng.next_u64() >> (64 - m)) as usize;
                for k in 0..m {
                    targets[(r, k)] = ((*idx >> (m - 1 - k)) & 1) as f32;
                }
                pilots[r] = constellation.point(*idx);
            }
            channel.transmit(&mut pilots, &mut self.rng);
            let mut y = Matrix::zeros(b, 2);
            for (r, p) in pilots.iter().enumerate() {
                y.row_mut(r).copy_from_slice(&[p.re, p.im]);
            }

            let loss = if let Some(engine) = engine.as_mut() {
                engine
                    .train_step(demapper.model_mut(), &mut self.opt, &y, &targets)
                    .loss
            } else {
                demapper.model_mut().zero_grad();
                let z = demapper.model_mut().forward(&y);
                let (loss, grad) = bce_with_logits(&z, &targets);
                demapper.model_mut().backward(&grad);
                self.opt.step(&mut demapper.model_mut().params_mut());
                loss
            };
            if step == 0 {
                initial_loss = loss;
            }
            final_loss = loss;
        }

        RetrainReport {
            final_loss,
            initial_loss,
            steps,
            sim_time_s: engine.as_ref().map(|e| e.total_time_s),
            sim_energy_j: engine.as_ref().map(|e| e.total_energy_j),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::e2e::E2eTrainer;
    use crate::mapper::NeuralMapper;
    use hybridem_comm::channel::ChannelChain;

    fn trained_system(cfg: &SystemConfig) -> (NeuralMapper, NeuralDemapper) {
        let mut rng = Xoshiro256pp::stream(cfg.seed, 0);
        let mut mapper = NeuralMapper::new(cfg.num_symbols(), &mut rng);
        let mut demapper = NeuralDemapper::new(cfg.demapper.build(&mut rng));
        let mut t = E2eTrainer::new(cfg);
        let _ = t.train(&mut mapper, &mut demapper);
        (mapper, demapper)
    }

    #[test]
    fn retraining_recovers_phase_offset() {
        let mut cfg = SystemConfig::fast_test();
        cfg.e2e_steps = 600;
        cfg.retrain_steps = 500;
        cfg.snr_db = 8.0;
        let (mapper, mut demapper) = trained_system(&cfg);
        let constellation = mapper.constellation();
        let mut channel =
            ChannelChain::phase_then_awgn(std::f32::consts::FRAC_PI_4, cfg.es_n0_db());
        let mut rt = Retrainer::new(&cfg);
        let report = rt.run(&constellation, &mut channel, &mut demapper);
        assert!(
            report.final_loss < report.initial_loss * 0.25,
            "retraining must recover the rotated channel: {} → {}",
            report.initial_loss,
            report.final_loss
        );
    }

    #[test]
    fn hardware_accounting_charges_time_and_energy() {
        let mut cfg = SystemConfig::fast_test();
        cfg.e2e_steps = 200;
        cfg.retrain_steps = 50;
        let (mapper, mut demapper) = trained_system(&cfg);
        let constellation = mapper.constellation();
        let mut channel = ChannelChain::phase_then_awgn(0.3, cfg.es_n0_db());
        let mut rt = Retrainer::new(&cfg).with_hardware_accounting();
        let report = rt.run(&constellation, &mut channel, &mut demapper);
        let t = report.sim_time_s.unwrap();
        let e = report.sim_energy_j.unwrap();
        assert!(t > 0.0 && e > 0.0);
        // 50 steps × 128 samples × ~40 cycles at 150 MHz ≈ 1.7 ms.
        assert!(t > 1e-4 && t < 1e-1, "sim time {t}");
        // Energy = power × time with ~0.5 W → sub-millijoule-ish.
        assert!(e < 0.1, "sim energy {e}");
    }

    #[test]
    fn report_counts_steps() {
        let mut cfg = SystemConfig::fast_test();
        cfg.e2e_steps = 100;
        cfg.retrain_steps = 7;
        let (mapper, mut demapper) = trained_system(&cfg);
        let constellation = mapper.constellation();
        let mut channel = ChannelChain::phase_then_awgn(0.1, cfg.es_n0_db());
        let mut rt = Retrainer::new(&cfg);
        let report = rt.run(&constellation, &mut channel, &mut demapper);
        assert_eq!(report.steps, 7);
        assert!(report.sim_time_s.is_none());
    }
}
