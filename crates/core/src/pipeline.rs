//! The full hybrid flow (the paper's Fig. 1).
//!
//! ```text
//! E2E Training ──▶ (deploy) ──▶ Inference ◀──────────┐
//!                                   │ channel drifted │
//!                                   ▼                 │
//!                               Retraining ──▶ re-extract centroids
//! ```
//!
//! [`HybridPipeline`] owns the mapper, the demapper ANN, the extracted
//! centroids and the conventional demapper built on them, and exposes
//! each phase as a method. Examples and the experiment binaries are
//! thin wrappers around this type.

use crate::config::SystemConfig;
use crate::demapper_ann::NeuralDemapper;
use crate::e2e::E2eTrainer;
use crate::eval::{measure, BerPoint};
use crate::extraction::{extract, ExtractionConfig, ExtractionReport};
use crate::hybrid::HybridDemapper;
use crate::mapper::NeuralMapper;
use crate::retrain::{RetrainReport, Retrainer};
use hybridem_comm::channel::Channel;
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::MaxLogMap;
use hybridem_mathkit::rng::Xoshiro256pp;

/// Which phase of Fig. 1 the system is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Joint mapper+demapper training over the abstract channel.
    E2eTraining,
    /// Centroid-based inference.
    Inference,
    /// Demapper-only adaptation to the live channel.
    Retraining,
}

/// The complete hybrid system.
pub struct HybridPipeline {
    cfg: SystemConfig,
    mapper: NeuralMapper,
    demapper: NeuralDemapper,
    phase: Phase,
    extraction: Option<ExtractionReport>,
    hybrid: Option<HybridDemapper>,
}

impl HybridPipeline {
    /// Fresh, untrained system.
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate();
        let mut rng = Xoshiro256pp::stream(cfg.seed, 0);
        let mapper = NeuralMapper::new(cfg.num_symbols(), &mut rng);
        let demapper = NeuralDemapper::new(cfg.demapper.build(&mut rng));
        Self {
            cfg,
            mapper,
            demapper,
            phase: Phase::E2eTraining,
            extraction: None,
            hybrid: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The learned (frozen after E2E) constellation.
    pub fn constellation(&self) -> Constellation {
        self.mapper.constellation()
    }

    /// The demapper ANN.
    pub fn ann_demapper(&self) -> &NeuralDemapper {
        &self.demapper
    }

    /// The hybrid (centroid max-log) demapper; available after
    /// [`HybridPipeline::extract_centroids`].
    pub fn hybrid_demapper(&self) -> Option<&HybridDemapper> {
        self.hybrid.as_ref()
    }

    /// The most recent extraction report.
    pub fn extraction_report(&self) -> Option<&ExtractionReport> {
        self.extraction.as_ref()
    }

    /// Phase 1: end-to-end training over the abstract AWGN channel.
    /// Returns the smoothed final loss.
    pub fn e2e_train(&mut self) -> f32 {
        let mut trainer = E2eTrainer::new(&self.cfg);
        let _ = trainer.train(&mut self.mapper, &mut self.demapper);
        self.phase = Phase::Inference;
        trainer.tail_loss(50)
    }

    /// Phase 3 entry: sample decision regions, extract centroids, and
    /// build the hybrid demapper. Returns the extraction report.
    pub fn extract_centroids(&mut self) -> ExtractionReport {
        let ecfg = ExtractionConfig::new(self.cfg.grid_n, self.cfg.window_scale);
        let fallback = self.constellation();
        let report = extract(&self.demapper, &ecfg, &fallback);
        self.hybrid = Some(HybridDemapper::from_extraction(&report, self.cfg.sigma()));
        self.extraction = Some(report.clone());
        self.phase = Phase::Inference;
        report
    }

    /// Phase 2: retrain the demapper against a live channel (mapper
    /// frozen), then re-extract centroids.
    pub fn retrain(&mut self, channel: &mut dyn Channel) -> RetrainReport {
        self.phase = Phase::Retraining;
        let constellation = self.constellation();
        let mut rt = Retrainer::new(&self.cfg);
        let report = rt.run(&constellation, channel, &mut self.demapper);
        let _ = self.extract_centroids();
        report
    }

    /// Measures the three receivers of the paper on a given channel:
    /// conventional Gray-QAM, AE-inference, and the hybrid centroid
    /// demapper. `symbols` per receiver.
    pub fn evaluate_three(&self, channel: &dyn Channel, symbols: u64, seed: u64) -> Vec<BerPoint> {
        let sigma = self.cfg.sigma();
        let snr = self.cfg.snr_db;
        let qam = Constellation::qam_gray(self.cfg.num_symbols());
        let conventional = MaxLogMap::new(qam.clone(), sigma);
        let learned = self.constellation();

        let mut out = Vec::with_capacity(3);
        out.push(measure(
            "conventional",
            snr,
            &qam,
            channel,
            &conventional,
            symbols,
            seed,
        ));
        out.push(measure(
            "AE-inference",
            snr,
            &learned,
            channel,
            &self.demapper,
            symbols,
            seed.wrapping_add(1),
        ));
        if let Some(hybrid) = &self.hybrid {
            out.push(measure(
                "hybrid-centroids",
                snr,
                &learned,
                channel,
                hybrid,
                symbols,
                seed.wrapping_add(2),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_comm::channel::{Awgn, ChannelChain};

    fn fast_pipeline() -> HybridPipeline {
        let mut cfg = SystemConfig::fast_test();
        // Enough budget that the AE reaches its asymptote; still ~2 s
        // in release mode.
        cfg.e2e_steps = 2500;
        cfg.batch_size = 256;
        cfg.retrain_steps = 600;
        cfg.grid_n = 96;
        cfg.snr_db = 8.0;
        HybridPipeline::new(cfg)
    }

    #[test]
    fn full_flow_ae_close_to_conventional() {
        let mut pipe = fast_pipeline();
        assert_eq!(pipe.phase(), Phase::E2eTraining);
        let loss = pipe.e2e_train();
        assert!(loss < 0.2, "E2E loss {loss}");
        let report = pipe.extract_centroids();
        assert_eq!(report.centroids.len(), 16);
        assert!(
            report.missing_labels.len() <= 2,
            "most regions must exist: missing {:?}",
            report.missing_labels
        );

        let channel = Awgn::from_es_n0_db(pipe.config().es_n0_db());
        let points = pipe.evaluate_three(&channel, 150_000, 9);
        assert_eq!(points.len(), 3);
        let conventional = points[0].ber;
        let ae = points[1].ber;
        let hybrid = points[2].ber;
        // Paper Fig. 2: all three on the same level (reduced training
        // budget here, so allow some envelope).
        assert!(
            ae < conventional * 2.0 + 1e-3,
            "AE {ae} vs conventional {conventional}"
        );
        assert!(
            hybrid < conventional * 2.0 + 1e-3,
            "hybrid {hybrid} vs conventional {conventional}"
        );
        // And the hybrid must track the AE it was extracted from.
        assert!(
            hybrid < ae * 1.6 + 1e-3,
            "hybrid {hybrid} must track ae {ae}"
        );
    }

    #[test]
    fn retrain_flow_recovers_rotation() {
        let mut pipe = fast_pipeline();
        let _ = pipe.e2e_train();
        let _ = pipe.extract_centroids();
        let theta = std::f32::consts::FRAC_PI_4;
        let es = pipe.config().es_n0_db();

        // Before retraining: rotated channel breaks both receivers.
        let rotated = ChannelChain::phase_then_awgn(theta, es);
        let before = pipe.evaluate_three(&rotated, 60_000, 21);
        let ae_before = before[1].ber;
        let hybrid_before = before[2].ber;
        assert!(ae_before > 0.15, "rotation must hurt: {ae_before}");
        assert!(hybrid_before > 0.15);

        // Retrain on the rotated channel, then re-evaluate.
        let mut live = ChannelChain::phase_then_awgn(theta, es);
        let report = pipe.retrain(&mut live);
        assert!(report.final_loss < report.initial_loss);
        let after = pipe.evaluate_three(&rotated, 60_000, 22);
        let ae_after = after[1].ber;
        let hybrid_after = after[2].ber;
        assert!(
            ae_after < ae_before * 0.3,
            "AE must recover: {ae_before} → {ae_after}"
        );
        assert!(
            hybrid_after < hybrid_before * 0.3,
            "hybrid must recover: {hybrid_before} → {hybrid_after}"
        );
    }
}
