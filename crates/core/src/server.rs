//! Many-link serving fabric: thousands of independent link sessions
//! multiplexed over a bounded work-stealing pool, with **cross-link
//! batched demapping** (DESIGN.md §12).
//!
//! [`crate::runtime`] simulates links one campaign at a time; the
//! ROADMAP north star is serving millions of concurrent users, which
//! is a different shape of problem: sessions open and close
//! continuously, load is imbalanced, and the SIMD / integer-graph
//! demap kernels (DESIGN.md §11) only pay for themselves when fed
//! large contiguous blocks. [`LinkServer`] owns per-session state in a
//! generation-checked slab, admits frame work through bounded queues
//! with explicit backpressure ([`Admit::Shed`]), and serves rounds on
//! a [`StealPool`] so hot links spread across workers instead of
//! pinning a static partition. The hot path gathers ready symbols
//! across sessions of the same backend into contiguous buffers, issues
//! **one** [`Demapper::demap_block`] call per batch of up to
//! [`ServerCfg::batch_links`] links, and scatters the LLR spans back
//! into per-session monitor state.
//!
//! What is and is not deterministic: scheduling is not — tasks run on
//! arbitrary workers in arbitrary order. The *report* is: every
//! session draws from its own seeded RNG stream, `demap_block` is
//! bit-exact against the per-symbol reference (so LLRs are independent
//! of which batch a symbol landed in), per-session statistics are
//! integer counts, and [`LinkServer::aggregate`] folds them in slab
//! order. The aggregate artefact is therefore byte-identical at any
//! worker count and any batch size — pinned by the root
//! `linkserver` integration test.
//!
//! Steady state allocates nothing (extends the PR 4 counting-allocator
//! contract to the gather/scatter path): session buffers, the plan
//! scratch, the gather buffers and the pool's deques all reuse their
//! capacity after a warmup round. The one documented exception is ECC
//! monitoring — [`ConvCode::encode`] / [`Viterbi::decode_soft`]
//! allocate internally, so the no-alloc contract is stated (and
//! tested) for pilot-monitored sessions.

use crate::runtime::Monitor;
use hybridem_comm::channel::Channel;
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::Demapper;
use hybridem_comm::ecc::{ConvCode, Viterbi};
use hybridem_comm::trajectory::{Trajectory, TrajectoryChannel};
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::json::{FromJson, Json, JsonError};
use hybridem_mathkit::rng::{Rng64, Xoshiro256pp};
use hybridem_parallel::{num_threads, StealPool};
use std::cell::UnsafeCell;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Server shape: worker count, per-session queue bound, batch width.
#[derive(Clone, Copy, Debug)]
pub struct ServerCfg {
    /// Pool participants including the serving thread (≥ 1).
    pub workers: usize,
    /// Maximum frames a session may have queued; a `submit` that would
    /// exceed it is shed whole (never partially enqueued).
    pub queue_cap: u32,
    /// Maximum links gathered into one `demap_block` call. `1`
    /// degenerates to per-link demap calls — the honest unbatched
    /// baseline the saturation bench compares against.
    pub batch_links: usize,
}

impl Default for ServerCfg {
    fn default() -> Self {
        Self {
            workers: num_threads(),
            queue_cap: 64,
            batch_links: 256,
        }
    }
}

/// Handle to a registered (constellation, demapper) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BackendId(u32);

/// Generation-checked session handle. Slab slots are reused after
/// [`LinkServer::close_session`], but the slot's generation is bumped
/// on close, so a stale handle held past the close is rejected with
/// [`SessionError::Stale`] instead of silently addressing the new
/// tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SessionId {
    index: u32,
    generation: u32,
}

/// Admission verdict of [`LinkServer::submit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admit {
    /// The frames were enqueued.
    Accepted,
    /// The bounded queue would overflow: nothing was enqueued and the
    /// shed frames were counted in the session's statistics. The
    /// caller sees backpressure explicitly instead of an unbounded
    /// queue absorbing it.
    Shed,
}

/// A session handle failed the slab check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The handle's slot is empty, out of range, or reused by a newer
    /// session (generation mismatch).
    Stale,
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Stale => write!(f, "stale session id (closed or never opened)"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Everything needed to open one serving session.
#[derive(Clone, Debug)]
pub struct SessionCfg {
    /// Which registered backend demaps this session's frames.
    pub backend: BackendId,
    /// The session's scripted channel (held at its final state past
    /// the script's end, so long-lived sessions keep streaming).
    pub trajectory: Trajectory,
    /// Seed of the session's private RNG stream.
    pub seed: u64,
    /// Symbols per frame.
    pub frame_symbols: usize,
    /// Known pilot symbols at the start of every frame.
    pub pilot_symbols: usize,
    /// Which evidence the per-session monitor accumulates.
    pub monitor: Monitor,
}

impl SessionCfg {
    /// Session with the default frame geometry (256 symbols, 64
    /// pilots, pilot monitoring).
    pub fn new(backend: BackendId, trajectory: Trajectory, seed: u64) -> Self {
        Self {
            backend,
            trajectory,
            seed,
            frame_symbols: 256,
            pilot_symbols: 64,
            monitor: Monitor::Pilot,
        }
    }
}

/// Integer-only per-session counters. Deliberately no floating-point
/// accumulation: integer sums merge order-independently, which is what
/// makes the aggregate report byte-identical across worker counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Frames offered to admission control (accepted **and** shed) —
    /// the left-hand side of the frame-conservation invariant
    /// `submitted = frames + shed + dropped (+ still pending)`.
    pub submitted_frames: u64,
    /// Frames served.
    pub frames: u64,
    /// Payload bits transmitted.
    pub payload_bits: u64,
    /// Payload bit errors (raw demapped decisions, before ECC).
    pub payload_bit_errors: u64,
    /// Pilot bits transmitted.
    pub pilot_bits: u64,
    /// Pilot bit errors.
    pub pilot_bit_errors: u64,
    /// Channel bits the Viterbi decoder corrected (ECC monitor only).
    pub ecc_corrected: u64,
    /// Frames refused by admission control.
    pub shed_frames: u64,
    /// Frames accepted but still queued when the session closed.
    /// Closing is the caller's choice (not backpressure), but the
    /// frames must still be accounted — they were admitted and never
    /// served.
    pub dropped_frames: u64,
}

impl SessionStats {
    /// Adds `other` into `self` (associative + commutative: all
    /// fields are counts).
    pub fn merge(&mut self, other: &SessionStats) {
        self.submitted_frames += other.submitted_frames;
        self.frames += other.frames;
        self.payload_bits += other.payload_bits;
        self.payload_bit_errors += other.payload_bit_errors;
        self.pilot_bits += other.pilot_bits;
        self.pilot_bit_errors += other.pilot_bit_errors;
        self.ecc_corrected += other.ecc_corrected;
        self.shed_frames += other.shed_frames;
        self.dropped_frames += other.dropped_frames;
    }

    /// Payload BER (0 when no payload was served — never NaN).
    pub fn ber(&self) -> f64 {
        if self.payload_bits == 0 {
            0.0
        } else {
            self.payload_bit_errors as f64 / self.payload_bits as f64
        }
    }
}

/// Slab-order fold of every session's counters (open + closed), plus
/// server-level counts. All fields are integers, so the serialised
/// artefact is byte-identical across worker counts and batch sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggregateReport {
    /// Sessions currently open.
    pub sessions_open: u64,
    /// Sessions closed over the server's lifetime.
    pub sessions_closed: u64,
    /// Serving rounds executed.
    pub rounds: u64,
    /// Frames offered to admission control (accepted and shed).
    pub submitted_frames: u64,
    /// Frames served.
    pub frames: u64,
    /// Payload bits transmitted.
    pub payload_bits: u64,
    /// Payload bit errors.
    pub payload_bit_errors: u64,
    /// Pilot bits transmitted.
    pub pilot_bits: u64,
    /// Pilot bit errors.
    pub pilot_bit_errors: u64,
    /// Viterbi-corrected channel bits (ECC-monitored sessions).
    pub ecc_corrected: u64,
    /// Frames refused by admission control.
    pub shed_frames: u64,
    /// Frames accepted but dropped unserved by a session close.
    pub dropped_frames: u64,
    /// Frames accepted and still queued on open sessions.
    pub pending_frames: u64,
}

hybridem_mathkit::impl_to_json!(AggregateReport {
    sessions_open,
    sessions_closed,
    rounds,
    submitted_frames,
    frames,
    payload_bits,
    payload_bit_errors,
    pilot_bits,
    pilot_bit_errors,
    ecc_corrected,
    shed_frames,
    dropped_frames,
    pending_frames,
});

impl FromJson for AggregateReport {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            sessions_open: u64::from_json(v.field("sessions_open")?)?,
            sessions_closed: u64::from_json(v.field("sessions_closed")?)?,
            rounds: u64::from_json(v.field("rounds")?)?,
            submitted_frames: u64::from_json(v.field("submitted_frames")?)?,
            frames: u64::from_json(v.field("frames")?)?,
            payload_bits: u64::from_json(v.field("payload_bits")?)?,
            payload_bit_errors: u64::from_json(v.field("payload_bit_errors")?)?,
            pilot_bits: u64::from_json(v.field("pilot_bits")?)?,
            pilot_bit_errors: u64::from_json(v.field("pilot_bit_errors")?)?,
            ecc_corrected: u64::from_json(v.field("ecc_corrected")?)?,
            shed_frames: u64::from_json(v.field("shed_frames")?)?,
            dropped_frames: u64::from_json(v.field("dropped_frames")?)?,
            pending_frames: u64::from_json(v.field("pending_frames")?)?,
        })
    }
}

impl AggregateReport {
    /// Aggregate payload BER (0 when nothing was served — never NaN).
    pub fn ber(&self) -> f64 {
        if self.payload_bits == 0 {
            0.0
        } else {
            self.payload_bit_errors as f64 / self.payload_bits as f64
        }
    }

    /// Internal-consistency check: error counts never exceed their bit
    /// counts, and every submitted frame is accounted for exactly once
    /// (`submitted = served + shed + dropped + pending`). Returns the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.payload_bit_errors > self.payload_bits {
            return Err("more payload errors than bits".to_string());
        }
        if self.pilot_bit_errors > self.pilot_bits {
            return Err("more pilot errors than bits".to_string());
        }
        let accounted = self.frames + self.shed_frames + self.dropped_frames + self.pending_frames;
        if self.submitted_frames != accounted {
            return Err(format!(
                "frame conservation broken: {} submitted vs {} served + {} shed \
                 + {} dropped + {} pending",
                self.submitted_frames,
                self.frames,
                self.shed_frames,
                self.dropped_frames,
                self.pending_frames
            ));
        }
        Ok(())
    }
}

struct Backend {
    constellation: Constellation,
    demapper: Arc<dyn Demapper>,
}

/// One serving session: private RNG, scripted channel, reused frame
/// buffers, integer counters. Lives behind a slot `Mutex` so the
/// parallel phases can lock exactly the sessions of their chunk
/// (chunks never share a session, so the locks are uncontended).
struct Session {
    backend: u32,
    pilot_symbols: usize,
    monitor: Monitor,
    rng: Xoshiro256pp,
    channel: TrajectoryChannel,
    code: ConvCode,
    viterbi: Viterbi,
    pending: u32,
    stats: SessionStats,
    // Reused per-frame scratch (same discipline as OnlineLink): no
    // allocation after construction for pilot-monitored sessions.
    tx_syms: Vec<usize>,
    block: Vec<C32>,
    llrs: Vec<f32>,
    tx_bits: Vec<u8>,
    info: Vec<u8>,
}

impl Session {
    /// Builds the next frame into `self.block`: pilot prefix, payload
    /// (uniform symbols, or a convolutional codeword under ECC
    /// monitoring), mapping, channel.
    fn gen_frame(&mut self, constellation: &Constellation) {
        let m = constellation.bits_per_symbol();
        let p = self.pilot_symbols;
        for s in self.tx_syms.iter_mut().take(p) {
            *s = (self.rng.next_u64() >> (64 - m)) as usize;
        }
        if self.monitor == Monitor::Ecc {
            self.rng.fill_bits(&mut self.info);
            let coded = self.code.encode(&self.info);
            for (k, chunk) in coded.chunks(m).enumerate() {
                self.tx_syms[p + k] = hybridem_comm::bits::pack_bits(chunk);
            }
        } else {
            for s in self.tx_syms.iter_mut().skip(p) {
                *s = (self.rng.next_u64() >> (64 - m)) as usize;
            }
        }
        for (i, (&u, y)) in self.tx_syms.iter().zip(self.block.iter_mut()).enumerate() {
            *y = constellation.point(u);
            for k in 0..m {
                self.tx_bits[i * m + k] = constellation.bit(u, k);
            }
        }
        self.channel.transmit(&mut self.block, &mut self.rng);
    }

    /// Consumes one frame's LLRs (wherever they were demapped to):
    /// hard decisions against the transmitted bits, monitor counters,
    /// queue decrement.
    fn finish_frame(&mut self, llrs: &[f32], m: usize) {
        let n = self.block.len();
        let p = self.pilot_symbols;
        debug_assert_eq!(llrs.len(), n * m);
        let mut pilot_errors = 0u64;
        let mut payload_errors = 0u64;
        for (i, (&b, &l)) in self.tx_bits.iter().zip(llrs).enumerate() {
            let err = u64::from(u8::from(l < 0.0) != b);
            if i < p * m {
                pilot_errors += err;
            } else {
                payload_errors += err;
            }
        }
        if self.monitor == Monitor::Ecc {
            let outcome = self.viterbi.decode_soft(&self.code, &llrs[p * m..n * m]);
            self.stats.ecc_corrected += outcome.corrected;
        }
        self.stats.frames += 1;
        self.stats.payload_bits += ((n - p) * m) as u64;
        self.stats.payload_bit_errors += payload_errors;
        self.stats.pilot_bits += (p * m) as u64;
        self.stats.pilot_bit_errors += pilot_errors;
        self.pending -= 1;
    }

    /// The unbatched (batch of one) path: demap straight from the
    /// session's own buffers — no gather copy, so the per-link
    /// baseline the saturation bench measures is honest.
    fn serve_unbatched(&mut self, constellation: &Constellation, demapper: &dyn Demapper) {
        self.gen_frame(constellation);
        let llrs = std::mem::take(&mut self.llrs);
        let mut llrs = llrs;
        demapper.demap_block(&self.block, &mut llrs);
        self.finish_frame(&llrs, constellation.bits_per_symbol());
        self.llrs = llrs;
    }
}

struct Slot {
    generation: u32,
    session: Option<Mutex<Session>>,
}

/// A buffer the parallel phases write disjoint ranges of. The usual
/// split-at-mut discipline doesn't fit here because the disjoint
/// ranges are computed per task at plan time, so the elements live in
/// [`UnsafeCell`]s and the splits are hand-checked instead.
struct SharedBuf<T>(Vec<UnsafeCell<T>>);

// SAFETY: interior access is only through `slice_mut` under its
// documented disjointness contract; `T: Send` values may be written
// from any thread.
unsafe impl<T: Send> Sync for SharedBuf<T> {}

impl<T: Copy + Default> SharedBuf<T> {
    fn new() -> Self {
        Self(Vec::new())
    }

    /// Grows to at least `len` elements (plan stage only — requires
    /// exclusive access). A no-op once the high-water mark is reached,
    /// keeping the steady state allocation-free.
    fn ensure_len(&mut self, len: usize) {
        if self.0.len() < len {
            self.0.resize_with(len, || UnsafeCell::new(T::default()));
        }
    }

    /// Mutable view of `start..start + len`.
    ///
    /// # Safety
    /// Concurrent calls must use disjoint ranges, and no call may
    /// overlap an `ensure_len`. The serving round guarantees both:
    /// every range is derived from the plan's prefix sums, each
    /// session belongs to exactly one chunk, and `ensure_len` runs
    /// before the pool round starts.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self, start: usize, len: usize) -> &mut [T] {
        let cells = &self.0[start..start + len];
        // `UnsafeCell<T>` is `repr(transparent)` over `T`.
        std::slice::from_raw_parts_mut(cells.as_ptr() as *mut T, cells.len())
    }
}

/// A contiguous run of up to `batch_links` same-backend sessions,
/// demapped with one `demap_block` call.
#[derive(Clone, Copy, Debug)]
struct Chunk {
    backend: u32,
    /// Range into the round's `order` list.
    start: usize,
    end: usize,
    /// This chunk's base offsets into the gather/LLR buffers.
    sym_base: usize,
    bit_base: usize,
}

/// The many-link serving fabric. See the module docs for the
/// architecture; DESIGN.md §12 for the full design discussion.
pub struct LinkServer {
    cfg: ServerCfg,
    backends: Vec<Backend>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    retired: SessionStats,
    closed: u64,
    rounds: u64,
    pool: StealPool,
    // Round-plan scratch, reused across rounds (no steady-state
    // allocation): active slots grouped by backend, their prefix-sum
    // buffer offsets, the chunk descriptors, and the gather buffers.
    order: Vec<u32>,
    offsets: Vec<(usize, usize)>,
    chunks: Vec<Chunk>,
    gather: SharedBuf<C32>,
    gathered_llrs: SharedBuf<f32>,
}

impl LinkServer {
    /// Server with the given shape. Spawns `cfg.workers − 1`
    /// persistent background workers.
    ///
    /// # Panics
    /// Panics if `workers`, `queue_cap` or `batch_links` is zero.
    pub fn new(cfg: ServerCfg) -> Self {
        assert!(cfg.workers >= 1, "at least the serving thread");
        assert!(cfg.queue_cap >= 1, "a zero queue admits nothing");
        assert!(cfg.batch_links >= 1, "batches gather at least one link");
        Self {
            cfg,
            backends: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            retired: SessionStats::default(),
            closed: 0,
            rounds: 0,
            pool: StealPool::new(cfg.workers),
            order: Vec::new(),
            offsets: Vec::new(),
            chunks: Vec::new(),
            gather: SharedBuf::new(),
            gathered_llrs: SharedBuf::new(),
        }
    }

    /// The server shape.
    pub fn cfg(&self) -> &ServerCfg {
        &self.cfg
    }

    /// Registers a (constellation, demapper) pair sessions can bind
    /// to. Backends are shared read-only across all workers.
    ///
    /// # Panics
    /// Panics when the demapper's width disagrees with the
    /// constellation's, or exceeds the 16-bit symbol cap.
    pub fn register_backend(
        &mut self,
        constellation: Constellation,
        demapper: Arc<dyn Demapper>,
    ) -> BackendId {
        let m = constellation.bits_per_symbol();
        assert_eq!(
            m,
            demapper.bits_per_symbol(),
            "constellation and demapper disagree on bits/symbol"
        );
        assert!(m <= 16, "bits per symbol > 16 unsupported");
        self.backends.push(Backend {
            constellation,
            demapper,
        });
        BackendId(self.backends.len() as u32 - 1)
    }

    /// Opens a session in the slab: a freed slot is reused if one
    /// exists (its generation already bumped by the close), otherwise
    /// the slab grows.
    ///
    /// # Panics
    /// Panics on an unknown backend or invalid frame geometry.
    pub fn open_session(&mut self, cfg: SessionCfg) -> SessionId {
        let backend = self
            .backends
            .get(cfg.backend.0 as usize)
            .expect("unknown backend id");
        let m = backend.constellation.bits_per_symbol();
        let n = cfg.frame_symbols;
        assert!(n > 0, "frame length must be positive");
        assert!(cfg.pilot_symbols <= n, "pilots cannot exceed the frame");
        let payload_bits = (n - cfg.pilot_symbols) * m;
        let info_len = if cfg.monitor == Monitor::Ecc {
            assert!(
                payload_bits.is_multiple_of(2) && payload_bits / 2 > ConvCode::TAIL,
                "ECC monitoring needs an even payload capacity above the tail"
            );
            payload_bits / 2 - ConvCode::TAIL
        } else {
            0
        };
        let session = Session {
            backend: cfg.backend.0,
            pilot_symbols: cfg.pilot_symbols,
            monitor: cfg.monitor,
            rng: Xoshiro256pp::stream(cfg.seed, 0),
            channel: TrajectoryChannel::new(cfg.trajectory, n),
            code: ConvCode::new(),
            viterbi: Viterbi::new(),
            pending: 0,
            stats: SessionStats::default(),
            tx_syms: vec![0; n],
            block: vec![C32::zero(); n],
            llrs: vec![0.0; n * m],
            tx_bits: vec![0; n * m],
            info: vec![0; info_len],
        };
        let index = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize].session = Some(Mutex::new(session));
                i
            }
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    session: Some(Mutex::new(session)),
                });
                (self.slots.len() - 1) as u32
            }
        };
        SessionId {
            index,
            generation: self.slots[index as usize].generation,
        }
    }

    fn slot_mut(&mut self, id: SessionId) -> Result<&mut Slot, SessionError> {
        let slot = self
            .slots
            .get_mut(id.index as usize)
            .ok_or(SessionError::Stale)?;
        if slot.generation != id.generation || slot.session.is_none() {
            return Err(SessionError::Stale);
        }
        Ok(slot)
    }

    /// Closes a session: its counters fold into the retired
    /// accumulator (they stay visible to [`LinkServer::aggregate`]),
    /// the slot's generation is bumped so stale handles are rejected,
    /// and the slot joins the free list for reuse. Returns the
    /// session's final counters. Queued-but-unserved frames are
    /// counted as `dropped_frames` — closing is the caller's choice
    /// (not shed), but the admitted frames must stay accounted, or
    /// the aggregate's conservation invariant would leak on every
    /// close.
    pub fn close_session(&mut self, id: SessionId) -> Result<SessionStats, SessionError> {
        let slot = self.slot_mut(id)?;
        let session = slot.session.take().expect("checked occupied");
        slot.generation = slot.generation.wrapping_add(1);
        let session = session.into_inner().unwrap();
        let mut stats = session.stats;
        stats.dropped_frames += u64::from(session.pending);
        self.retired.merge(&stats);
        self.closed += 1;
        self.free.push(id.index);
        Ok(stats)
    }

    /// A session's current counters.
    pub fn session_stats(&mut self, id: SessionId) -> Result<SessionStats, SessionError> {
        let slot = self.slot_mut(id)?;
        Ok(slot.session.as_mut().unwrap().get_mut().unwrap().stats)
    }

    /// Frames a session has queued.
    pub fn pending(&mut self, id: SessionId) -> Result<u32, SessionError> {
        let slot = self.slot_mut(id)?;
        Ok(slot.session.as_mut().unwrap().get_mut().unwrap().pending)
    }

    /// Admission control: enqueues `frames` for the session, or sheds
    /// the whole request when it would push the queue past
    /// [`ServerCfg::queue_cap`]. Shed frames are counted in the
    /// session's statistics; the queue never exceeds its bound.
    pub fn submit(&mut self, id: SessionId, frames: u32) -> Result<Admit, SessionError> {
        let cap = self.cfg.queue_cap;
        // The slab check runs before any counter moves: a stale handle
        // must not touch the slot's current tenant (its shed/submit
        // counts belong to a different session).
        let slot = self.slot_mut(id)?;
        let s = slot.session.as_mut().unwrap().get_mut().unwrap();
        s.stats.submitted_frames += u64::from(frames);
        if frames > cap - s.pending {
            s.stats.shed_frames += u64::from(frames);
            Ok(Admit::Shed)
        } else {
            s.pending += frames;
            Ok(Admit::Accepted)
        }
    }

    /// Rebinds an open session to another registered backend: the next
    /// served frame demaps through the new backend, and the round
    /// planner's grouping moves the session between batch groups
    /// automatically (grouping is recomputed from `session.backend`
    /// every round). Constellations must agree — the transmitter does
    /// not change mid-stream, only the demapper implementation does
    /// (the registry's switch line-up shares one constellation for
    /// exactly this reason).
    ///
    /// # Panics
    /// Panics on an unknown backend id or a constellation mismatch.
    pub fn switch_backend(
        &mut self,
        id: SessionId,
        backend: BackendId,
    ) -> Result<(), SessionError> {
        let to = self
            .backends
            .get(backend.0 as usize)
            .expect("unknown backend id");
        let to_points = to.constellation.points().to_vec();
        let slot = self
            .slots
            .get_mut(id.index as usize)
            .ok_or(SessionError::Stale)?;
        if slot.generation != id.generation || slot.session.is_none() {
            return Err(SessionError::Stale);
        }
        let s = slot.session.as_mut().unwrap().get_mut().unwrap();
        let from = &self.backends[s.backend as usize];
        assert_eq!(
            from.constellation.points(),
            &to_points[..],
            "backend switch must preserve the transmit constellation"
        );
        s.backend = backend.0;
        Ok(())
    }

    /// Registers every backend of a [`BackendRegistry`](crate::registry::BackendRegistry) at one
    /// operating point, in registration order; `result[h.index()]` is
    /// the server-side id of registry handle `h`. Sessions opened on
    /// one of these ids can [`LinkServer::switch_backend`] to any
    /// other whose backend shares the constellation — for a
    /// [`crate::registry::switch_registry`] line-up, all of them.
    pub fn register_registry(
        &mut self,
        registry: &crate::registry::BackendRegistry,
        es_n0_db: f64,
    ) -> Vec<BackendId> {
        registry
            .iter()
            .map(|(_, b)| self.register_backend(b.constellation().clone(), b.demapper(es_n0_db)))
            .collect()
    }

    /// Serves one frame on every session with queued work; returns the
    /// number of frames served.
    ///
    /// A round is: **plan** (sequential — group active sessions by
    /// backend, prefix-sum their buffer offsets, chop into chunks of
    /// ≤ `batch_links` links), then one pool round over the chunks.
    /// Each chunk task generates its sessions' frames, gathers their
    /// symbols into this chunk's contiguous range of the shared
    /// buffer, issues one `demap_block` for the whole chunk, and
    /// scatters each session's LLR span back into its monitor state.
    /// Single-link chunks skip the gather and demap in place.
    pub fn serve_round(&mut self) -> u64 {
        let Self {
            cfg,
            backends,
            slots,
            pool,
            order,
            offsets,
            chunks,
            gather,
            gathered_llrs,
            rounds,
            ..
        } = self;

        // ---- plan (sequential, reused scratch) -----------------------
        order.clear();
        offsets.clear();
        chunks.clear();
        let (mut sym, mut bits) = (0usize, 0usize);
        for b in 0..backends.len() as u32 {
            let seg_start = order.len();
            for (i, slot) in slots.iter_mut().enumerate() {
                let Some(cell) = slot.session.as_mut() else {
                    continue;
                };
                let s = cell.get_mut().unwrap();
                if s.backend != b || s.pending == 0 {
                    continue;
                }
                order.push(i as u32);
                offsets.push((sym, bits));
                sym += s.block.len();
                bits += s.llrs.len();
            }
            let mut c = seg_start;
            while c < order.len() {
                let end = (c + cfg.batch_links).min(order.len());
                chunks.push(Chunk {
                    backend: b,
                    start: c,
                    end,
                    sym_base: offsets[c].0,
                    bit_base: offsets[c].1,
                });
                c = end;
            }
        }
        if order.is_empty() {
            return 0;
        }
        gather.ensure_len(sym);
        gathered_llrs.ensure_len(bits);
        let (total_sym, total_bits) = (sym, bits);

        // ---- execute (work-stealing over chunks) ---------------------
        let slots: &[Slot] = slots;
        let order: &[u32] = order;
        let offsets: &[(usize, usize)] = offsets;
        let gather: &SharedBuf<C32> = gather;
        let gathered_llrs: &SharedBuf<f32> = gathered_llrs;
        let lock = |k: usize| {
            slots[order[k] as usize]
                .session
                .as_ref()
                .expect("planned slots stay occupied for the round")
                .lock()
                .unwrap()
        };
        pool.run(chunks.len(), |ci| {
            let c = chunks[ci];
            let backend = &backends[c.backend as usize];
            let m = backend.constellation.bits_per_symbol();
            if c.end - c.start == 1 {
                lock(c.start).serve_unbatched(&backend.constellation, backend.demapper.as_ref());
                return;
            }
            // Gather: each session's fresh frame lands in its planned
            // range of the shared buffer (ranges are disjoint — one
            // chunk per session, prefix-sum offsets).
            for (k, off) in offsets.iter().enumerate().take(c.end).skip(c.start) {
                let mut s = lock(k);
                s.gen_frame(&backend.constellation);
                let dst = unsafe { gather.slice_mut(off.0, s.block.len()) };
                dst.copy_from_slice(&s.block);
            }
            let sym_end = offsets.get(c.end).map_or(total_sym, |o| o.0);
            let bit_end = offsets.get(c.end).map_or(total_bits, |o| o.1);
            // One demap call for the whole chunk — this is the batching
            // the saturation bench measures. `demap_block` is bit-exact
            // against the per-symbol path, so LLRs are independent of
            // batch composition.
            let ys = unsafe { gather.slice_mut(c.sym_base, sym_end - c.sym_base) };
            let out = unsafe { gathered_llrs.slice_mut(c.bit_base, bit_end - c.bit_base) };
            backend.demapper.demap_block(ys, out);
            // Scatter: each session consumes its LLR span.
            for (k, off) in offsets.iter().enumerate().take(c.end).skip(c.start) {
                let mut s = lock(k);
                let span = unsafe { gathered_llrs.slice_mut(off.1, s.llrs.len()) };
                s.finish_frame(span, m);
            }
        });
        *rounds += 1;
        order.len() as u64
    }

    /// Serves rounds until every queue is drained; returns the total
    /// frames served.
    pub fn serve(&mut self) -> u64 {
        let mut total = 0;
        loop {
            let served = self.serve_round();
            if served == 0 {
                return total;
            }
            total += served;
        }
    }

    /// Sessions currently open.
    pub fn open_sessions(&self) -> usize {
        self.slots.iter().filter(|s| s.session.is_some()).count()
    }

    /// Serving rounds executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Cumulative steal count of the underlying pool (observability;
    /// deliberately **not** part of [`AggregateReport`] — it depends
    /// on scheduling).
    pub fn steal_count(&self) -> u64 {
        self.pool.steal_count()
    }

    /// Folds every session's counters — open sessions in slab order,
    /// then the retired accumulator — into the aggregate artefact.
    /// Integer counts + fixed fold order ⇒ byte-identical JSON at any
    /// worker count and batch size.
    pub fn aggregate(&mut self) -> AggregateReport {
        let mut total = SessionStats::default();
        let mut open = 0u64;
        let mut pending = 0u64;
        for slot in &mut self.slots {
            if let Some(cell) = slot.session.as_mut() {
                let s = cell.get_mut().unwrap();
                total.merge(&s.stats);
                pending += u64::from(s.pending);
                open += 1;
            }
        }
        total.merge(&self.retired.clone());
        AggregateReport {
            sessions_open: open,
            sessions_closed: self.closed,
            rounds: self.rounds,
            submitted_frames: total.submitted_frames,
            frames: total.frames,
            payload_bits: total.payload_bits,
            payload_bit_errors: total.payload_bit_errors,
            pilot_bits: total.pilot_bits,
            pilot_bit_errors: total.pilot_bit_errors,
            ecc_corrected: total.ecc_corrected,
            shed_frames: total.shed_frames,
            dropped_frames: total.dropped_frames,
            pending_frames: pending,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_comm::demapper::MaxLogMap;
    use hybridem_comm::trajectory::ChannelState;
    use hybridem_mathkit::json::ToJson;

    fn qam_server(cfg: ServerCfg) -> (LinkServer, BackendId) {
        let qam = Constellation::qam_gray(16);
        let mut server = LinkServer::new(cfg);
        let backend = server.register_backend(qam.clone(), Arc::new(MaxLogMap::new(qam, 0.2)) as _);
        (server, backend)
    }

    fn clean_session(backend: BackendId, seed: u64) -> SessionCfg {
        let mut cfg = SessionCfg::new(
            backend,
            Trajectory::constant("clean", ChannelState::clean(f64::INFINITY), 1),
            seed,
        );
        cfg.frame_symbols = 32;
        cfg.pilot_symbols = 8;
        cfg
    }

    #[test]
    fn noiseless_sessions_serve_error_free() {
        let (mut server, backend) = qam_server(ServerCfg {
            workers: 2,
            ..ServerCfg::default()
        });
        let ids: Vec<_> = (0..17)
            .map(|i| server.open_session(clean_session(backend, i)))
            .collect();
        for &id in &ids {
            assert_eq!(server.submit(id, 3).unwrap(), Admit::Accepted);
        }
        assert_eq!(server.serve(), 17 * 3);
        let agg = server.aggregate();
        agg.validate().unwrap();
        assert_eq!(agg.frames, 51);
        assert_eq!(agg.payload_bit_errors, 0);
        assert_eq!(agg.pilot_bit_errors, 0);
        assert_eq!(agg.payload_bits, 51 * (32 - 8) * 4);
        assert_eq!(agg.shed_frames, 0);
        assert_eq!(agg.sessions_open, 17);
    }

    #[test]
    fn noisy_aggregate_is_identical_across_batch_sizes() {
        // The determinism claim at the heart of the design: a symbol's
        // LLRs do not depend on which gather batch it landed in, so
        // the whole artefact is independent of batch_links.
        let serve = |batch_links: usize| {
            let (mut server, backend) = qam_server(ServerCfg {
                workers: 3,
                queue_cap: 16,
                batch_links,
            });
            for i in 0..29 {
                let mut cfg = clean_session(backend, 1000 + i);
                cfg.trajectory = Trajectory::constant("awgn", ChannelState::clean(8.0), 1);
                let id = server.open_session(cfg);
                server.submit(id, 4).unwrap();
            }
            server.serve();
            server.aggregate().to_json().to_string_pretty()
        };
        let baseline = serve(1);
        assert_eq!(baseline, serve(7));
        assert_eq!(baseline, serve(256));
    }

    #[test]
    fn slab_reuses_slots_and_rejects_stale_ids() {
        let (mut server, backend) = qam_server(ServerCfg::default());
        let a = server.open_session(clean_session(backend, 1));
        let b = server.open_session(clean_session(backend, 2));
        server.submit(a, 1).unwrap();
        server.serve();
        let stats = server.close_session(a).unwrap();
        assert_eq!(stats.frames, 1);
        // The slot is reused for the next open…
        let c = server.open_session(clean_session(backend, 3));
        assert_eq!(c.index, a.index, "freed slot must be reused");
        assert_ne!(c.generation, a.generation, "…under a new generation");
        // …and every operation through the stale handle is rejected.
        assert_eq!(server.submit(a, 1), Err(SessionError::Stale));
        assert_eq!(server.session_stats(a), Err(SessionError::Stale));
        assert_eq!(server.close_session(a), Err(SessionError::Stale));
        // Closed counters stay in the aggregate.
        assert_eq!(server.aggregate().frames, 1);
        assert_eq!(server.aggregate().sessions_closed, 1);
        let _ = (b, c);
    }

    #[test]
    fn double_close_is_stale() {
        let (mut server, backend) = qam_server(ServerCfg::default());
        let id = server.open_session(clean_session(backend, 5));
        server.close_session(id).unwrap();
        assert_eq!(server.close_session(id), Err(SessionError::Stale));
    }

    #[test]
    fn admission_sheds_whole_requests_and_caps_the_queue() {
        let (mut server, backend) = qam_server(ServerCfg {
            queue_cap: 4,
            ..ServerCfg::default()
        });
        let id = server.open_session(clean_session(backend, 9));
        assert_eq!(server.submit(id, 3).unwrap(), Admit::Accepted);
        // 3 + 2 > 4: shed whole, nothing partially enqueued.
        assert_eq!(server.submit(id, 2).unwrap(), Admit::Shed);
        assert_eq!(server.pending(id).unwrap(), 3);
        assert_eq!(server.submit(id, 1).unwrap(), Admit::Accepted);
        assert_eq!(server.pending(id).unwrap(), 4);
        assert_eq!(server.submit(id, 1).unwrap(), Admit::Shed);
        assert_eq!(server.pending(id).unwrap(), 4, "queue never exceeds cap");
        server.serve();
        let stats = server.session_stats(id).unwrap();
        assert_eq!(stats.frames, 4);
        assert_eq!(stats.shed_frames, 3);
    }

    #[test]
    fn close_counts_queued_frames_as_dropped() {
        let (mut server, backend) = qam_server(ServerCfg::default());
        let id = server.open_session(clean_session(backend, 4));
        server.submit(id, 5).unwrap();
        server.serve_round(); // serves exactly one frame
        let stats = server.close_session(id).unwrap();
        assert_eq!(stats.submitted_frames, 5);
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.dropped_frames, 4, "pending at close must be counted");
        let agg = server.aggregate();
        agg.validate()
            .expect("conservation holds through the close");
        assert_eq!(agg.dropped_frames, 4);
        assert_eq!(agg.pending_frames, 0);
        assert_eq!(
            agg.submitted_frames,
            agg.frames + agg.shed_frames + agg.dropped_frames + agg.pending_frames
        );
    }

    #[test]
    fn stale_submit_never_touches_the_slots_new_tenant() {
        // Regression: a stale handle into a reused slab slot must be
        // rejected *before* any counter moves, or the old session's
        // traffic would pollute the new occupant's shed/submitted
        // statistics.
        let (mut server, backend) = qam_server(ServerCfg {
            queue_cap: 2,
            ..ServerCfg::default()
        });
        let old = server.open_session(clean_session(backend, 1));
        server.close_session(old).unwrap();
        let new = server.open_session(clean_session(backend, 2));
        assert_eq!(new.index, old.index, "slot reuse is the precondition");
        // Oversized and normal submits through the stale handle.
        assert_eq!(server.submit(old, 100), Err(SessionError::Stale));
        assert_eq!(server.submit(old, 1), Err(SessionError::Stale));
        let stats = server.session_stats(new).unwrap();
        assert_eq!(stats.submitted_frames, 0, "stale submit must not count");
        assert_eq!(stats.shed_frames, 0, "stale shed must not count");
        assert_eq!(server.pending(new).unwrap(), 0);
        server.aggregate().validate().unwrap();
    }

    #[test]
    fn switch_backend_migrates_between_batch_groups() {
        // Two demappers over the same constellation but different σ:
        // LLR magnitudes differ, hard decisions (and counters) agree
        // on a clean channel. A session switched mid-stream must serve
        // the remaining frames under the new backend's batch group and
        // keep the aggregate byte-identical at any worker count.
        let serve = |workers: usize| {
            let qam = Constellation::qam_gray(16);
            let mut server = LinkServer::new(ServerCfg {
                workers,
                ..ServerCfg::default()
            });
            let a = server
                .register_backend(qam.clone(), Arc::new(MaxLogMap::new(qam.clone(), 0.2)) as _);
            let b = server.register_backend(qam.clone(), Arc::new(MaxLogMap::new(qam, 0.4)) as _);
            let ids: Vec<_> = (0..13)
                .map(|i| {
                    let mut cfg = clean_session(if i % 2 == 0 { a } else { b }, 300 + i);
                    cfg.trajectory = Trajectory::constant("awgn", ChannelState::clean(9.0), 1);
                    server.open_session(cfg)
                })
                .collect();
            for &id in &ids {
                server.submit(id, 2).unwrap();
            }
            server.serve();
            // Mid-stream migration: every even session moves a → b.
            for (i, &id) in ids.iter().enumerate() {
                if i % 2 == 0 {
                    server.switch_backend(id, b).unwrap();
                }
            }
            for &id in &ids {
                server.submit(id, 2).unwrap();
            }
            server.serve();
            let agg = server.aggregate();
            agg.validate().unwrap();
            agg.to_json().to_string_pretty()
        };
        let baseline = serve(1);
        assert_eq!(baseline, serve(4), "migration keeps worker determinism");
    }

    #[test]
    fn switch_backend_rejects_stale_and_mismatched() {
        let qam = Constellation::qam_gray(16);
        let mut server = LinkServer::new(ServerCfg::default());
        let a =
            server.register_backend(qam.clone(), Arc::new(MaxLogMap::new(qam.clone(), 0.2)) as _);
        let id = server.open_session(clean_session(a, 1));
        server.close_session(id).unwrap();
        assert_eq!(server.switch_backend(id, a), Err(SessionError::Stale));
        // A different constellation must panic, not silently corrupt
        // the session's transmit side.
        let learned = Constellation::qam_gray(16).rotated(0.3);
        let b =
            server.register_backend(learned.clone(), Arc::new(MaxLogMap::new(learned, 0.2)) as _);
        let id2 = server.open_session(clean_session(a, 2));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = server.switch_backend(id2, b);
        }));
        assert!(r.is_err(), "constellation mismatch must panic");
    }

    #[test]
    fn registry_backends_register_in_handle_order() {
        use crate::config::SystemConfig;
        use crate::pipeline::HybridPipeline;
        use crate::registry::switch_registry;
        let mut pipe = HybridPipeline::new(SystemConfig::fast_test());
        let _ = pipe.extract_centroids();
        let registry = switch_registry(&pipe, &[]);
        let mut server = LinkServer::new(ServerCfg::default());
        let ids = server.register_registry(&registry, 12.0);
        assert_eq!(ids.len(), registry.len());
        // A session on any of them can switch to any other: the whole
        // switch line-up shares the learned constellation.
        let id = server.open_session(clean_session(ids[0], 7));
        for &b in &ids[1..] {
            server.switch_backend(id, b).unwrap();
        }
        server.submit(id, 1).unwrap();
        assert_eq!(server.serve(), 1);
        server.aggregate().validate().unwrap();
    }

    #[test]
    fn ecc_monitored_sessions_count_corrections() {
        let (mut server, backend) = qam_server(ServerCfg::default());
        let mut cfg = SessionCfg::new(
            backend,
            Trajectory::constant("awgn", ChannelState::clean(4.0), 1),
            77,
        );
        cfg.monitor = Monitor::Ecc;
        let id = server.open_session(cfg);
        server.submit(id, 8).unwrap();
        server.serve();
        let stats = server.session_stats(id).unwrap();
        assert_eq!(stats.frames, 8);
        assert!(
            stats.payload_bit_errors > 0,
            "4 dB QAM-16 must show raw errors"
        );
        assert!(stats.ecc_corrected > 0, "the decoder must correct some");
    }

    #[test]
    fn aggregate_report_round_trips_json() {
        let (mut server, backend) = qam_server(ServerCfg::default());
        let id = server.open_session(clean_session(backend, 3));
        server.submit(id, 2).unwrap();
        server.serve();
        let report = server.aggregate();
        report.validate().unwrap();
        let text = report.to_json().to_string_pretty();
        let back = AggregateReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    #[should_panic(expected = "disagree on bits/symbol")]
    fn mismatched_backend_widths_rejected() {
        let mut server = LinkServer::new(ServerCfg::default());
        let wrong = MaxLogMap::new(Constellation::qam_gray(4), 0.1);
        let _ = server.register_backend(Constellation::qam_gray(16), Arc::new(wrong) as _);
    }

    #[test]
    #[should_panic(expected = "unknown backend")]
    fn unknown_backend_rejected() {
        let mut server = LinkServer::new(ServerCfg::default());
        let _ = server.open_session(clean_session(BackendId(0), 0));
    }
}
