//! End-to-end autoencoder training (paper step 1).
//!
//! Mapper and demapper train jointly over a *differentiable* channel:
//! `y = e^{jθ}·x + n`, `n ~ CN(0, 2σ²)`. Both the rotation and the
//! additive noise are differentiable — the backward pass rotates the
//! demapper's input gradient by `−θ` and passes it straight into the
//! mapper (the reparameterisation view of AWGN). Loss is bitwise BCE
//! on logits, maximising bitwise mutual information as in the paper.

use crate::config::SystemConfig;
use crate::demapper_ann::NeuralDemapper;
use crate::mapper::NeuralMapper;
use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::rng::{Rng64, Xoshiro256pp};
use hybridem_nn::loss::bce_with_logits;
use hybridem_nn::optim::Optimizer;
use hybridem_nn::schedule::LrSchedule;
use hybridem_nn::Adam;

/// Joint trainer for the autoencoder.
pub struct E2eTrainer {
    cfg: SystemConfig,
    /// Static channel rotation used during training (0 for the paper's
    /// abstract AWGN channel).
    pub channel_theta: f32,
    rng: Xoshiro256pp,
    mapper_opt: Adam,
    demapper_opt: Adam,
    schedule: LrSchedule,
    step_count: u64,
    /// Per-step loss history.
    pub loss_history: Vec<f32>,
}

impl E2eTrainer {
    /// New trainer for a configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        cfg.validate();
        Self {
            channel_theta: 0.0,
            rng: Xoshiro256pp::stream(cfg.seed, 1),
            mapper_opt: Adam::new(cfg.e2e_lr),
            demapper_opt: Adam::new(cfg.e2e_lr),
            // Cosine-anneal to 5 % of the initial rate: the constellation
            // settles early, the demapper boundaries keep refining.
            schedule: LrSchedule::Cosine {
                lr: cfg.e2e_lr,
                min_lr: cfg.e2e_lr * 0.05,
                total: cfg.e2e_steps as u64,
            },
            step_count: 0,
            loss_history: Vec::with_capacity(cfg.e2e_steps),
            cfg: cfg.clone(),
        }
    }

    /// One training step; returns the batch loss.
    pub fn step(&mut self, mapper: &mut NeuralMapper, demapper: &mut NeuralDemapper) -> f32 {
        let lr = self.schedule.at(self.step_count);
        self.mapper_opt.set_learning_rate(lr);
        self.demapper_opt.set_learning_rate(lr);
        self.step_count += 1;
        let m = self.cfg.bits_per_symbol;
        let b = self.cfg.batch_size;
        let sigma = self.cfg.sigma();

        // Sample symbols and their target bits.
        let mut indices = vec![0usize; b];
        let mut targets = Matrix::zeros(b, m);
        for (r, idx) in indices.iter_mut().enumerate() {
            *idx = (self.rng.next_u64() >> (64 - m)) as usize;
            for k in 0..m {
                targets[(r, k)] = ((*idx >> (m - 1 - k)) & 1) as f32;
            }
        }

        // Mapper → channel (rotate + AWGN) → demapper.
        mapper.param_mut().zero_grad();
        demapper.model_mut().zero_grad();
        let x = mapper.forward(&indices);
        let (cos_t, sin_t) = (self.channel_theta.cos(), self.channel_theta.sin());
        let mut y = Matrix::zeros(b, 2);
        for r in 0..b {
            let (re, im) = (x[(r, 0)], x[(r, 1)]);
            let (n1, n2) = self.rng.normal_pair_f64();
            y[(r, 0)] = re * cos_t - im * sin_t + sigma * n1 as f32;
            y[(r, 1)] = re * sin_t + im * cos_t + sigma * n2 as f32;
        }
        let z = demapper.model_mut().forward(&y);
        let (loss, grad_z) = bce_with_logits(&z, &targets);

        // Backward: demapper, then channel (rotate by −θ), then mapper.
        let grad_y = demapper.model_mut().backward(&grad_z);
        let mut grad_x = Matrix::zeros(b, 2);
        for r in 0..b {
            let (gre, gim) = (grad_y[(r, 0)], grad_y[(r, 1)]);
            grad_x[(r, 0)] = gre * cos_t + gim * sin_t;
            grad_x[(r, 1)] = -gre * sin_t + gim * cos_t;
        }
        mapper.backward(&grad_x);

        self.mapper_opt.step(&mut [mapper.param_mut()]);
        self.demapper_opt
            .step(&mut demapper.model_mut().params_mut());
        self.loss_history.push(loss);
        loss
    }

    /// Runs the configured number of steps; returns the final loss.
    pub fn train(&mut self, mapper: &mut NeuralMapper, demapper: &mut NeuralDemapper) -> f32 {
        let mut last = f32::INFINITY;
        for _ in 0..self.cfg.e2e_steps {
            last = self.step(mapper, demapper);
        }
        last
    }

    /// Mean loss over the final `n` steps (smoother convergence metric).
    pub fn tail_loss(&self, n: usize) -> f32 {
        if self.loss_history.is_empty() {
            return f32::INFINITY;
        }
        let tail = &self.loss_history[self.loss_history.len().saturating_sub(n)..];
        tail.iter().sum::<f32>() / tail.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SystemConfig {
        let mut c = SystemConfig::fast_test();
        c.e2e_steps = 500;
        c.snr_db = 8.0;
        c
    }

    #[test]
    fn loss_decreases_substantially() {
        let cfg = small_cfg();
        let mut rng = Xoshiro256pp::stream(cfg.seed, 0);
        let mut mapper = NeuralMapper::new(cfg.num_symbols(), &mut rng);
        let mut demapper = NeuralDemapper::new(cfg.demapper.build(&mut rng));
        let mut t = E2eTrainer::new(&cfg);
        let first = t.step(&mut mapper, &mut demapper);
        let _ = t.train(&mut mapper, &mut demapper);
        let last = t.tail_loss(50);
        assert!(
            last < first * 0.35,
            "E2E loss should fall: first {first}, tail {last}"
        );
    }

    #[test]
    fn constellation_stays_normalised_through_training() {
        let cfg = small_cfg();
        let mut rng = Xoshiro256pp::stream(cfg.seed, 0);
        let mut mapper = NeuralMapper::new(cfg.num_symbols(), &mut rng);
        let mut demapper = NeuralDemapper::new(cfg.demapper.build(&mut rng));
        let mut t = E2eTrainer::new(&cfg);
        for _ in 0..100 {
            let _ = t.step(&mut mapper, &mut demapper);
        }
        let c = mapper.constellation();
        assert!((c.avg_energy() - 1.0).abs() < 1e-4);
        // Learned points must be distinct (no collapse).
        assert!(c.min_distance() > 0.05, "min distance {}", c.min_distance());
    }

    #[test]
    fn deterministic_replay() {
        let cfg = small_cfg();
        let run = || {
            let mut rng = Xoshiro256pp::stream(cfg.seed, 0);
            let mut mapper = NeuralMapper::new(cfg.num_symbols(), &mut rng);
            let mut demapper = NeuralDemapper::new(cfg.demapper.build(&mut rng));
            let mut t = E2eTrainer::new(&cfg);
            for _ in 0..50 {
                let _ = t.step(&mut mapper, &mut demapper);
            }
            t.loss_history.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn training_with_rotation_converges_too() {
        let mut cfg = small_cfg();
        cfg.e2e_steps = 400;
        let mut rng = Xoshiro256pp::stream(cfg.seed, 0);
        let mut mapper = NeuralMapper::new(cfg.num_symbols(), &mut rng);
        let mut demapper = NeuralDemapper::new(cfg.demapper.build(&mut rng));
        let mut t = E2eTrainer::new(&cfg);
        t.channel_theta = std::f32::consts::FRAC_PI_4;
        let first = t.step(&mut mapper, &mut demapper);
        let _ = t.train(&mut mapper, &mut demapper);
        assert!(t.tail_loss(50) < first * 0.5);
    }
}
