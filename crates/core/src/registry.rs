//! Runtime demapper backend registry (DESIGN.md §13).
//!
//! The paper's central claim is that the *choice* of demapper —
//! conventional max-log, exact log-MAP, float ANN, hybrid centroids,
//! quantized MVAU graph, or an event-driven/spiking implementation —
//! is a cost/quality trade-off that should be made per operating
//! point, not at compile time. This module turns that choice into a
//! first-class runtime object: a [`Backend`] bundles a demapper
//! constructor with a per-symbol **cost model** (cycles and energy,
//! derived from the `fpga` resource/power model) and a **predicted
//! BER curve**, and a [`BackendRegistry`] makes the whole line-up
//! enumerable and selectable by one rule:
//!
//! > pick the *cheapest* registered backend whose predicted BER at
//! > the current SNR estimate meets the link's target
//! > ([`BackendRegistry::select`]).
//!
//! Campaigns ([`crate::eval::campaign_families`]), the drift runtime
//! ([`crate::runtime`], the `SwitchBackend` adaptation action) and the
//! serving fabric ([`crate::server::LinkServer::register_registry`])
//! all enumerate the same registry instead of hand-built lists.
//!
//! Cost is cycles-per-symbol first (initiation interval of the
//! modelled hardware pipeline), energy-per-symbol second
//! (`fpga::power::PowerModel` over the structural
//! `fpga::resources::ResourceUsage` estimate), registration order
//! third. Every stock backend's cycle curve is *non-increasing* in
//! SNR (clocked datapaths are flat; event-driven ones get cheaper as
//! spike activity falls), which makes selection monotone: a higher
//! SNR never selects a more expensive backend for the same BER target
//! (pinned by a property test).

use crate::demapper_ann::NeuralDemapper;
use crate::hybrid::HybridDemapper;
use crate::pipeline::HybridPipeline;
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::{Demapper, ExactLogMap, MaxLogMap};
use hybridem_comm::equalizer::{AdaptiveEqualizer, EqualizedDemapper, EqualizerConfig};
use hybridem_comm::snr::noise_sigma;
use hybridem_comm::theory::ber_qam_gray_approx;
use hybridem_fpga::demapper_accel::{SoftDemapperAccel, SoftDemapperConfig};
use hybridem_fpga::graph::QuantizedGraph;
use hybridem_fpga::mvau::Folding;
use hybridem_fpga::power::PowerModel;
use hybridem_fpga::resources::ResourceUsage;
use hybridem_mathkit::complex::C32;
use hybridem_nn::model::{LayerSnapshot, Sequential};
use std::sync::Arc;

/// Per-symbol cost of running a backend at one operating point.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BackendCost {
    /// Steady-state initiation interval: cycles between symbols.
    pub cycles_per_symbol: f64,
    /// Energy per demapped symbol in joules (power model over the
    /// structural resource estimate at the modelled clock).
    pub energy_per_symbol_j: f64,
}

impl BackendCost {
    /// Strict-weak cost order: cycles first, energy as tie-break.
    /// `NaN`-free by construction (both fields come from finite
    /// resource/timing models).
    pub fn cheaper_than(&self, other: &BackendCost) -> bool {
        if self.cycles_per_symbol != other.cycles_per_symbol {
            return self.cycles_per_symbol < other.cycles_per_symbol;
        }
        self.energy_per_symbol_j < other.energy_per_symbol_j
    }
}

/// One registered demapper implementation family.
///
/// The SNR axis of every method is **Es/N0 in dB** (per-symbol SNR);
/// callers sweeping the paper's Eb/N0 axis convert first
/// (`hybridem_comm::snr::ebn0_to_esn0_db`).
pub trait Backend: Send + Sync {
    /// Unique registry name (artefact label).
    fn name(&self) -> &str;

    /// Transmit constellation this backend demaps.
    fn constellation(&self) -> &Constellation;

    /// Constructs the demapper for one operating point. SNR-agnostic
    /// backends (a trained ANN, a compiled integer graph) return a
    /// shared handle; noise-matched ones (max-log, hybrid) build with
    /// σ derived from `es_n0_db` at unit symbol energy.
    fn demapper(&self, es_n0_db: f64) -> Arc<dyn Demapper>;

    /// Per-symbol cost at one operating point. Stock backends keep
    /// this non-increasing in SNR so registry selection is monotone.
    fn cost(&self, es_n0_db: f64) -> BackendCost;

    /// Modelled BER at one operating point: the Gray-QAM reference
    /// curve shifted by a per-family implementation penalty. Strictly
    /// decreasing in SNR, which makes it invertible by the SNR
    /// estimators in [`crate::runtime`].
    fn predicted_ber(&self, es_n0_db: f64) -> f64;
}

/// Handle of a registered backend: a dense index into the registry,
/// stable for the registry's lifetime. Artefacts store the raw index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BackendHandle(u32);

impl BackendHandle {
    /// Dense registry index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An ordered, name-unique collection of [`Backend`]s.
#[derive(Clone, Default)]
pub struct BackendRegistry {
    entries: Vec<Arc<dyn Backend>>,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a backend and returns its handle.
    ///
    /// # Panics
    /// Panics on a duplicate name: names are artefact labels and
    /// selection tie-breaks, so they must be unique.
    pub fn register(&mut self, backend: Arc<dyn Backend>) -> BackendHandle {
        assert!(
            self.find(backend.name()).is_none(),
            "backend name {:?} already registered",
            backend.name()
        );
        let h = BackendHandle(u32::try_from(self.entries.len()).expect("registry fits u32"));
        self.entries.push(backend);
        h
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The backend behind a handle.
    pub fn get(&self, handle: BackendHandle) -> &Arc<dyn Backend> {
        &self.entries[handle.index()]
    }

    /// Registration-order iteration.
    pub fn iter(&self) -> impl Iterator<Item = (BackendHandle, &Arc<dyn Backend>)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, b)| (BackendHandle(i as u32), b))
    }

    /// Registration-order names (artefact backend table).
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|b| b.name().to_string()).collect()
    }

    /// Looks a backend up by name.
    pub fn find(&self, name: &str) -> Option<BackendHandle> {
        self.entries
            .iter()
            .position(|b| b.name() == name)
            .map(|i| BackendHandle(i as u32))
    }

    /// The selection rule: the cheapest backend (cycles, then energy,
    /// then registration order) whose predicted BER at `es_n0_db`
    /// meets `ber_target`. `None` when no backend meets the target.
    pub fn select(&self, es_n0_db: f64, ber_target: f64) -> Option<BackendHandle> {
        let mut best: Option<(BackendHandle, BackendCost)> = None;
        for (h, b) in self.iter() {
            if b.predicted_ber(es_n0_db) > ber_target {
                continue;
            }
            let c = b.cost(es_n0_db);
            if best.as_ref().is_none_or(|(_, bc)| c.cheaper_than(bc)) {
                best = Some((h, c));
            }
        }
        best.map(|(h, _)| h)
    }

    /// [`BackendRegistry::select`] with a graceful floor: when no
    /// backend meets the target, falls back to the most accurate one
    /// (lowest predicted BER, first registered on ties) — a link
    /// below every backend's operating region should run the best
    /// demapper available, not none.
    ///
    /// # Panics
    /// Panics on an empty registry.
    pub fn select_or_best(&self, es_n0_db: f64, ber_target: f64) -> BackendHandle {
        assert!(!self.is_empty(), "selection over an empty registry");
        if let Some(h) = self.select(es_n0_db, ber_target) {
            return h;
        }
        let mut best = BackendHandle(0);
        let mut best_ber = f64::INFINITY;
        for (h, b) in self.iter() {
            let ber = b.predicted_ber(es_n0_db);
            if ber < best_ber {
                best = h;
                best_ber = ber;
            }
        }
        best
    }
}

/// Reference BER curve used by every stock backend: the closed-form
/// Gray-QAM approximation at the backend's constellation order
/// (non-square orders fall back to 16-QAM — the paper's operating
/// order), shifted right by the family's implementation penalty.
fn reference_ber(order: usize, es_n0_db: f64, penalty_db: f64) -> f64 {
    let order = match order {
        4 | 16 | 64 | 256 => order,
        _ => 16,
    };
    ber_qam_gray_approx(order, es_n0_db - penalty_db)
}

/// Per-dimension noise σ at unit symbol energy — the workspace-wide
/// convention for matching a demapper to an Es/N0 operating point.
fn sigma_at(es_n0_db: f64) -> f32 {
    noise_sigma(es_n0_db, 1.0) as f32
}

type BuildFn = dyn Fn(f64) -> Arc<dyn Demapper> + Send + Sync;
type CurveFn = dyn Fn(f64) -> f64 + Send + Sync;

/// The stock [`Backend`] implementation: a demapper constructor plus
/// a structural cost model. Clocked datapaths have an SNR-independent
/// cycle count at full toggle activity; event-driven ones supply
/// cycle/activity curves that fall with SNR.
pub struct ModelBackend {
    name: String,
    constellation: Constellation,
    build: Box<BuildFn>,
    penalty_db: f64,
    usage: ResourceUsage,
    clock_mhz: f64,
    cycles: Box<CurveFn>,
    activity: Box<CurveFn>,
}

impl ModelBackend {
    /// A clocked (always-toggling) backend with a flat cycle count.
    pub fn clocked(
        name: impl Into<String>,
        constellation: Constellation,
        build: Box<BuildFn>,
        penalty_db: f64,
        usage: ResourceUsage,
        clock_mhz: f64,
        cycles_per_symbol: f64,
    ) -> Self {
        assert!(cycles_per_symbol >= 1.0, "a symbol costs at least a cycle");
        Self {
            name: name.into(),
            constellation,
            build,
            penalty_db,
            usage,
            clock_mhz,
            cycles: Box::new(move |_| cycles_per_symbol),
            activity: Box::new(|_| 1.0),
        }
    }

    /// An event-driven backend: cycles and toggle activity are curves
    /// of the operating SNR (both should be non-increasing so the
    /// registry's selection monotonicity holds).
    #[allow(clippy::too_many_arguments)]
    pub fn event_driven(
        name: impl Into<String>,
        constellation: Constellation,
        build: Box<BuildFn>,
        penalty_db: f64,
        usage: ResourceUsage,
        clock_mhz: f64,
        cycles: Box<CurveFn>,
        activity: Box<CurveFn>,
    ) -> Self {
        Self {
            name: name.into(),
            constellation,
            build,
            penalty_db,
            usage,
            clock_mhz,
            cycles,
            activity,
        }
    }
}

impl Backend for ModelBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn constellation(&self) -> &Constellation {
        &self.constellation
    }

    fn demapper(&self, es_n0_db: f64) -> Arc<dyn Demapper> {
        (self.build)(es_n0_db)
    }

    fn cost(&self, es_n0_db: f64) -> BackendCost {
        let cycles = (self.cycles)(es_n0_db).max(1.0);
        let activity = (self.activity)(es_n0_db).clamp(1e-3, 1.0);
        let throughput = self.clock_mhz * 1e6 / cycles;
        let energy = PowerModel::default().energy_per_symbol_j(
            &self.usage,
            self.clock_mhz,
            activity,
            throughput,
        );
        BackendCost {
            cycles_per_symbol: cycles,
            energy_per_symbol_j: energy,
        }
    }

    fn predicted_ber(&self, es_n0_db: f64) -> f64 {
        reference_ber(self.constellation.size(), es_n0_db, self.penalty_db)
    }
}

/// Event-driven (spiking) demapper stub: max-log soft metrics read out
/// through a rate-coded spike counter. Each LLR is accumulated as a
/// signed spike count over `levels` timesteps, so the output is the
/// max-log LLR quantised to `2·levels + 1` values with saturation at
/// `±llr_clip` — the precision/latency trade-off of SNN readouts
/// (arXiv 2409.08698). Deterministic and thread-count independent:
/// quantisation is a pure elementwise map over the max-log block
/// kernel's bit-exact output.
pub struct SpikingDemapper {
    inner: MaxLogMap,
    step: f32,
    llr_clip: f32,
}

impl SpikingDemapper {
    /// Spiking readout over `centroids` at noise σ with `levels`
    /// accumulation timesteps per bit and saturation at `llr_clip`.
    pub fn new(centroids: Constellation, sigma: f32, levels: u32, llr_clip: f32) -> Self {
        assert!(levels >= 1, "at least one accumulation timestep");
        assert!(llr_clip > 0.0, "spike saturation must be positive");
        Self {
            inner: MaxLogMap::new(centroids, sigma),
            step: llr_clip / levels as f32,
            llr_clip,
        }
    }

    #[inline]
    fn quantize(&self, l: f32) -> f32 {
        (l.clamp(-self.llr_clip, self.llr_clip) / self.step).round() * self.step
    }
}

impl Demapper for SpikingDemapper {
    fn bits_per_symbol(&self) -> usize {
        self.inner.bits_per_symbol()
    }

    fn llrs(&self, y: C32, out: &mut [f32]) {
        self.inner.llrs(y, out);
        for l in out.iter_mut() {
            *l = self.quantize(*l);
        }
    }

    fn demap_block(&self, ys: &[C32], out: &mut [f32]) {
        self.inner.demap_block(ys, out);
        for l in out.iter_mut() {
            *l = self.quantize(*l);
        }
    }
}

/// Rule-of-thumb fabric footprint of one pipelined f32 multiply-add
/// unit (DSP-mapped mantissa multiplier plus alignment/normalisation
/// logic) — the unit cell of the float cost models below.
fn float_mac() -> ResourceUsage {
    ResourceUsage {
        lut: 800,
        ff: 600,
        dsp: 2,
        bram36: 0.0,
    }
}

/// Fabric clock every float/event-driven cost model is quoted at —
/// the paper's 150 MHz operating point.
const MODEL_CLOCK_MHZ: f64 = 150.0;

/// Implementation penalties (dB right-shift of the reference BER
/// curve) per stock family. Calibrated to the paper's ordering: exact
/// beats max-log by a hair, the float ANN and hybrid centroids sit
/// within half a dB, quantisation costs grow as width shrinks, and
/// the spiking stub lands between W6 and W4.
mod penalty {
    /// Exact log-MAP: optimal bitwise demapper.
    pub const EXACT: f64 = -0.05;
    /// Max-log with the true constellation.
    pub const MAX_LOG: f64 = 0.0;
    /// Trained float ANN at inference.
    pub const ANN: f64 = 0.25;
    /// Max-log on extracted centroids.
    pub const HYBRID: f64 = 0.45;
    /// Fixed-point accelerator model of the hybrid demapper.
    pub const ACCEL: f64 = 0.55;
    /// Spiking/event-driven readout stub.
    pub const SNN: f64 = 1.8;
    /// Adaptive FIR equalizer ahead of any backend: converged excess
    /// MSE (noise enhancement + residual ISI + tap jitter) modelled as
    /// an SNR shift of the wrapped family's curve.
    pub const EQUALIZER: f64 = 0.3;

    /// Quantized MVAU graph penalty by weight width.
    pub fn graph(weight_bits: u32) -> f64 {
        match weight_bits {
            w if w >= 8 => 0.9,
            6 | 7 => 1.4,
            _ => 2.6,
        }
    }
}

/// Total dense-layer multiply-accumulates of a model — the work term
/// of the float-ANN cost model (352 for the paper's 2→16→16→4
/// demapper, matching its 352-DSP full-parallel figure).
fn dense_macs(model: &Sequential) -> u64 {
    model
        .snapshot()
        .layers
        .iter()
        .map(|l| match l {
            LayerSnapshot::Dense { weight, .. } => (weight.rows() * weight.cols()) as u64,
            _ => 0,
        })
        .sum()
}

/// Float MAC units the modelled ANN/exact/max-log soft cores time-
/// multiplex their arithmetic over.
const FLOAT_UNITS: u64 = 4;

/// Max-log float software/soft-core backend on an arbitrary labelled
/// point set: one serial distance unit, `M` cycles per symbol.
/// Public so ad-hoc line-ups (the equalizer bench, external tools) can
/// build the stock conventional backend without a trained pipeline.
pub fn max_log_backend(name: &str, tx: Constellation, points: Constellation) -> ModelBackend {
    let m = points.size() as f64;
    let usage = float_mac().times(3) // sub/square/accumulate chain
        + ResourceUsage {
            lut: 400,
            ff: 200,
            dsp: 0,
            bram36: 0.0,
        }; // per-bit running-min network
    ModelBackend::clocked(
        name,
        tx,
        Box::new(move |es| Arc::new(MaxLogMap::new(points.clone(), sigma_at(es))) as _),
        penalty::MAX_LOG,
        usage,
        MODEL_CLOCK_MHZ,
        m,
    )
}

/// Spiking stub backend over a labelled point set. Its cycle count is
/// activity-driven: spike rates track the distance metrics, so as SNR
/// rises (metrics concentrate) both the accumulation time and the
/// toggle activity fall — the cost curve that makes an event-driven
/// implementation attractive only at high SNR.
fn snn_backend(tx: Constellation, points: Constellation) -> ModelBackend {
    let usage = ResourceUsage {
        lut: 900,
        ff: 700,
        dsp: 0,
        bram36: 1.0, // event queues
    };
    // Logistic spike-activity curve: ~1 near 0 dB Es/N0, ~0.05 floor
    // deep in the waterfall's tail. Non-increasing in SNR.
    let activity = |es: f64| (1.0 / (1.0 + 10f64.powf((es - 6.0) / 6.0))).clamp(0.05, 1.0);
    ModelBackend::event_driven(
        "snn-event",
        tx,
        Box::new(move |es| {
            Arc::new(SpikingDemapper::new(points.clone(), sigma_at(es), 8, 24.0)) as _
        }),
        penalty::SNN,
        usage,
        MODEL_CLOCK_MHZ,
        Box::new(move |es| 4.0 + 48.0 * activity(es)),
        Box::new(activity),
    )
}

/// Quantized-graph backend at the folding its weight width earns: a
/// narrower datapath affords more parallel MAC lanes in the same
/// fabric budget, so W4 runs fully parallel (II 1) while W8 folds to
/// II 8. Cycle count and resources both come from the refolded
/// graph's own MVAU model; outputs are bit-identical to the source
/// graph at any folding.
fn graph_backend(tx: Constellation, graph: &QuantizedGraph) -> ModelBackend {
    let bits = graph.weight_bits();
    let folding = match bits {
        w if w >= 8 => Folding::new(4, 8),
        6 | 7 => Folding::new(8, 8),
        _ => Folding::new(16, 16),
    };
    let folded = Arc::new(graph.with_folding(folding));
    let cycles = folded
        .mvaus()
        .iter()
        .map(|m| m.config().ii_cycles())
        .max()
        .unwrap_or(1) as f64;
    let usage = folded
        .mvaus()
        .iter()
        .fold(ResourceUsage::zero(), |acc, m| acc + m.resources());
    ModelBackend::clocked(
        format!("ann-qat-w{bits}"),
        tx,
        Box::new(move |_| folded.clone() as _),
        penalty::graph(bits),
        usage,
        MODEL_CLOCK_MHZ,
        cycles,
    )
}

/// Hybrid-centroid max-log backend: the *software* float demapper on
/// the extracted centroids, costed as the hardware it deploys to —
/// the paper's fixed-point soft-demapper accelerator (1 DSP, ~1.1 k
/// LUT, `M / dist_par` cycles per symbol).
fn hybrid_backend(
    cfg: &SoftDemapperConfig,
    tx: Constellation,
    centroids: Constellation,
) -> ModelBackend {
    let design = SoftDemapperAccel::new(cfg.clone(), centroids.points(), sigma_at(10.0));
    let timing = design.timing();
    ModelBackend::clocked(
        "hybrid-centroids",
        tx,
        Box::new(move |es| {
            Arc::new(HybridDemapper::from_centroids(
                centroids.clone(),
                sigma_at(es),
            )) as _
        }),
        penalty::HYBRID,
        design.resources(),
        timing.clock_mhz(),
        timing.ii_cycles() as f64,
    )
}

/// Fixed-point accelerator backend: the bit-exact integer model *is*
/// the demapper, costed by its own timing/resource estimate.
fn accel_backend(cfg: &SoftDemapperConfig, tx: Constellation, centroids: Vec<C32>) -> ModelBackend {
    let design = SoftDemapperAccel::new(cfg.clone(), &centroids, sigma_at(10.0));
    let timing = design.timing();
    let usage = design.resources();
    let clock = timing.clock_mhz();
    let cycles = timing.ii_cycles() as f64;
    let cfg = cfg.clone();
    ModelBackend::clocked(
        "fixed-point-accel",
        tx,
        Box::new(move |es| {
            Arc::new(SoftDemapperAccel::new(
                cfg.clone(),
                &centroids,
                sigma_at(es),
            )) as _
        }),
        penalty::ACCEL,
        usage,
        clock,
        cycles,
    )
}

/// Float-ANN backend: an owned copy of the trained demapper network
/// (snapshot round-trip, bit-identical weights), shared SNR-agnostically.
fn ann_backend(tx: Constellation, model: Sequential) -> ModelBackend {
    let macs = dense_macs(&model).max(1);
    let cycles = macs.div_ceil(FLOAT_UNITS) as f64;
    let usage = float_mac().times(FLOAT_UNITS)
        + ResourceUsage {
            lut: 600, // activation evaluation + sequencing
            ff: 300,
            dsp: 0,
            bram36: 0.5, // weight store
        };
    let ann: Arc<dyn Demapper> = Arc::new(NeuralDemapper::new(model));
    ModelBackend::clocked(
        "AE-inference",
        tx,
        Box::new(move |_| ann.clone()),
        penalty::ANN,
        usage,
        MODEL_CLOCK_MHZ,
        cycles,
    )
}

/// Exact log-MAP backend: max-log's datapath plus the exp/log-sum
/// pair, serialised over four passes of the point set.
fn exact_backend(tx: Constellation, points: Constellation) -> ModelBackend {
    let m = points.size() as f64;
    let usage = float_mac().times(5)
        + ResourceUsage {
            lut: 600,
            ff: 300,
            dsp: 0,
            bram36: 2.0, // exp/log lookup tables
        };
    ModelBackend::clocked(
        "exact-logmap",
        tx,
        Box::new(move |es| Arc::new(ExactLogMap::new(points.clone(), sigma_at(es))) as _),
        penalty::EXACT,
        usage,
        MODEL_CLOCK_MHZ,
        4.0 * m,
    )
}

/// A [`Backend`] wrapped behind a per-link adaptive FIR equalizer —
/// built by [`equalized`].
pub struct EqualizedBackend {
    name: String,
    inner: Arc<dyn Backend>,
    cfg: EqualizerConfig,
}

impl Backend for EqualizedBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn constellation(&self) -> &Constellation {
        self.inner.constellation()
    }

    /// A **fresh** [`EqualizedDemapper`] per call: the equalizer is
    /// stateful, so sharing one instance across links would adapt on a
    /// thread-dependent interleaving of their sample streams and break
    /// artefact determinism. Campaign and runtime plumbing calls
    /// `demapper()` once per link, which makes every link's equalizer
    /// private by construction.
    fn demapper(&self, es_n0_db: f64) -> Arc<dyn Demapper> {
        let eq = AdaptiveEqualizer::new(self.inner.constellation().clone(), self.cfg);
        Arc::new(EqualizedDemapper::new(self.inner.demapper(es_n0_db), eq))
    }

    /// The wrapped backend's cost plus the FIR stage: `num_taps`
    /// complex MACs per symbol over a 4-wide float MAC bank (one
    /// complex MAC per cycle), always toggling — adaptation updates
    /// run every symbol regardless of SNR.
    fn cost(&self, es_n0_db: f64) -> BackendCost {
        let inner = self.inner.cost(es_n0_db);
        let taps = self.cfg.num_taps as f64;
        let usage = float_mac().times(4)
            + ResourceUsage {
                lut: 500, // delay line + mode/handoff control
                ff: 400,
                dsp: 0,
                bram36: 0.0,
            };
        let throughput = MODEL_CLOCK_MHZ * 1e6 / taps;
        let energy =
            PowerModel::default().energy_per_symbol_j(&usage, MODEL_CLOCK_MHZ, 1.0, throughput);
        BackendCost {
            cycles_per_symbol: inner.cycles_per_symbol + taps,
            energy_per_symbol_j: inner.energy_per_symbol_j + energy,
        }
    }

    /// The wrapped family's curve shifted by `penalty::EQUALIZER` — on
    /// the memoryless channels the prediction models, a converged
    /// equalizer is a small excess-MSE tax, not a gain.
    fn predicted_ber(&self, es_n0_db: f64) -> f64 {
        self.inner.predicted_ber(es_n0_db - penalty::EQUALIZER)
    }
}

/// Wraps any backend behind a per-link adaptive FIR equalizer
/// (CMA acquisition → DD-LMS tracking, see
/// [`hybridem_comm::equalizer`]): campaigns and the backend-switch
/// runtime enumerate equalized families exactly like stock ones. The
/// entry is named `<inner>+eq`, so both variants can share a registry.
///
/// Not part of [`paper_registry`]/[`switch_registry`] — their name
/// lists are pinned by the determinism tests; line-ups that want
/// equalized entries register them explicitly.
pub fn equalized(inner: Arc<dyn Backend>, cfg: EqualizerConfig) -> Arc<dyn Backend> {
    Arc::new(EqualizedBackend {
        name: format!("{}+eq", inner.name()),
        inner,
        cfg,
    })
}

/// Clones the pipeline's trained demapper network (snapshot
/// round-trip: in-memory matrices, bit-identical weights).
fn owned_ann(pipe: &HybridPipeline) -> Sequential {
    Sequential::from_snapshot(pipe.ann_demapper().model().snapshot())
}

/// Extracted centroids of a pipeline that ran
/// [`HybridPipeline::extract_centroids`].
///
/// # Panics
/// Panics when extraction has not run.
fn centroids_of(pipe: &HybridPipeline) -> Constellation {
    pipe.hybrid_demapper()
        .expect("registry needs extracted centroids: run extract_centroids() first")
        .centroids()
        .clone()
}

/// The paper's full evaluation line-up as a registry, in the campaign
/// artefact's family order — `conventional`, `AE-inference`,
/// `hybrid-centroids`, `fixed-point-accel`, one `ann-qat-w{bits}` per
/// quantized graph — followed by the two families the registry adds
/// to the waterfall: `exact-logmap` and `snn-event`.
///
/// # Panics
/// Panics unless [`HybridPipeline::extract_centroids`] ran.
pub fn paper_registry(
    pipe: &HybridPipeline,
    accel_cfg: &SoftDemapperConfig,
    quantized: &[QuantizedGraph],
) -> BackendRegistry {
    let qam = Constellation::qam_gray(pipe.config().num_symbols());
    let learned = pipe.constellation();
    let centroids = centroids_of(pipe);
    let mut reg = BackendRegistry::new();
    reg.register(Arc::new(max_log_backend(
        "conventional",
        qam.clone(),
        qam.clone(),
    )));
    reg.register(Arc::new(ann_backend(learned.clone(), owned_ann(pipe))));
    reg.register(Arc::new(hybrid_backend(
        accel_cfg,
        learned.clone(),
        centroids.clone(),
    )));
    reg.register(Arc::new(accel_backend(
        accel_cfg,
        learned.clone(),
        centroids.points().to_vec(),
    )));
    for graph in quantized {
        reg.register(Arc::new(graph_backend(learned.clone(), graph)));
    }
    reg.register(Arc::new(exact_backend(qam.clone(), qam)));
    reg.register(Arc::new(snn_backend(learned, centroids)));
    reg
}

/// The per-link switching line-up: every backend transmits and demaps
/// the *learned* constellation, so one live session can migrate
/// between any two entries mid-stream. Ordered cheapest-last so the
/// cost axis, not registration order, drives selection: `max-log`,
/// `hybrid-centroids`, `ann-qat-w{bits}`…, `snn-event`.
///
/// # Panics
/// Panics unless [`HybridPipeline::extract_centroids`] ran.
pub fn switch_registry(pipe: &HybridPipeline, quantized: &[QuantizedGraph]) -> BackendRegistry {
    let learned = pipe.constellation();
    let centroids = centroids_of(pipe);
    let accel_cfg = SoftDemapperConfig::paper_default();
    let mut reg = BackendRegistry::new();
    reg.register(Arc::new(max_log_backend(
        "max-log",
        learned.clone(),
        learned.clone(),
    )));
    reg.register(Arc::new(hybrid_backend(
        &accel_cfg,
        learned.clone(),
        centroids.clone(),
    )));
    for graph in quantized {
        reg.register(Arc::new(graph_backend(learned.clone(), graph)));
    }
    reg.register(Arc::new(snn_backend(learned, centroids)));
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::qat::{qat_quantized_demapper, QatConfig};

    fn test_pipe() -> HybridPipeline {
        let mut pipe = HybridPipeline::new(SystemConfig::fast_test());
        let _ = pipe.extract_centroids();
        pipe
    }

    fn quick_graphs(pipe: &HybridPipeline) -> Vec<QuantizedGraph> {
        [4u32, 6, 8]
            .iter()
            .map(|&bits| {
                let mut qcfg = QatConfig::at_bits(bits);
                qcfg.steps = 4;
                qcfg.batch = 16;
                qat_quantized_demapper(pipe, &qcfg)
            })
            .collect()
    }

    #[test]
    fn paper_registry_covers_the_line_up_in_order() {
        let pipe = test_pipe();
        let graphs = quick_graphs(&pipe);
        let reg = paper_registry(&pipe, &SoftDemapperConfig::paper_default(), &graphs);
        assert_eq!(
            reg.names(),
            vec![
                "conventional",
                "AE-inference",
                "hybrid-centroids",
                "fixed-point-accel",
                "ann-qat-w4",
                "ann-qat-w6",
                "ann-qat-w8",
                "exact-logmap",
                "snn-event",
            ]
        );
        assert_eq!(reg.find("exact-logmap").unwrap().index(), 7);
        for (_, b) in reg.iter() {
            let d = b.demapper(10.0);
            assert_eq!(d.bits_per_symbol(), b.constellation().bits_per_symbol());
            let c = b.cost(10.0);
            assert!(c.cycles_per_symbol >= 1.0);
            assert!(c.energy_per_symbol_j > 0.0 && c.energy_per_symbol_j.is_finite());
        }
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let qam = Constellation::qam_gray(16);
        let mut reg = BackendRegistry::new();
        reg.register(Arc::new(max_log_backend("a", qam.clone(), qam.clone())));
        let dup = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.register(Arc::new(max_log_backend("a", qam.clone(), qam)))
        }));
        assert!(dup.is_err(), "duplicate name must panic");
    }

    #[test]
    fn switch_selection_rides_the_cost_ladder() {
        let pipe = test_pipe();
        let graphs = quick_graphs(&pipe);
        let reg = switch_registry(&pipe, &graphs);
        let target = 2e-2;
        // Below every backend's operating region: fall back to the
        // most accurate (max-log, penalty 0).
        assert_eq!(
            reg.select_or_best(2.0, target),
            reg.find("max-log").unwrap()
        );
        assert_eq!(reg.select(2.0, target), None);
        // The ramp downshifts max-log → hybrid → W4 as SNR headroom
        // grows; W6/W8 never win (hybrid is cheaper and accurate
        // enough first), snn never wins (costlier than hybrid).
        let at = |es: f64| reg.get(reg.select_or_best(es, target)).name().to_string();
        // 16-QAM Gray theory hits 2e-2 near 12.65 dB Es/N0; the
        // hybrid (+0.45 dB) and W4 (+2.6 dB) penalties stagger the
        // chain above it.
        assert_eq!(at(12.8), "max-log");
        assert_eq!(at(13.5), "hybrid-centroids");
        assert_eq!(at(15.5), "ann-qat-w4");
        // Cost strictly falls along the chain.
        let chain = ["max-log", "hybrid-centroids", "ann-qat-w4"];
        for w in chain.windows(2) {
            let a = reg.get(reg.find(w[0]).unwrap()).cost(12.0);
            let b = reg.get(reg.find(w[1]).unwrap()).cost(12.0);
            assert!(
                b.cheaper_than(&a),
                "{} should be cheaper than {}",
                w[1],
                w[0]
            );
        }
    }

    #[test]
    fn spiking_readout_quantises_the_maxlog_llrs() {
        let qam = Constellation::qam_gray(16);
        let snn = SpikingDemapper::new(qam.clone(), 0.2, 8, 24.0);
        let maxlog = MaxLogMap::new(qam.clone(), 0.2);
        let ys: Vec<C32> = qam
            .points()
            .iter()
            .map(|&p| C32::new(p.re * 1.05, p.im * 1.05))
            .collect();
        let m = qam.bits_per_symbol();
        let mut q = vec![0f32; ys.len() * m];
        let mut full = vec![0f32; ys.len() * m];
        snn.demap_block(&ys, &mut q);
        maxlog.demap_block(&ys, &mut full);
        let step = 24.0f32 / 8.0;
        for (i, (&ql, &fl)) in q.iter().zip(&full).enumerate() {
            assert!(ql.abs() <= 24.0 + 1e-6, "saturates at the clip");
            let levels = ql / step;
            assert!(
                (levels - levels.round()).abs() < 1e-4,
                "LLR {i} not on the spike grid: {ql}"
            );
            assert!((ql - fl.clamp(-24.0, 24.0)).abs() <= step * 0.5 + 1e-4);
        }
        // Sign agreement on confident symbols ⇒ hard decisions match.
        let mut hq = vec![0u8; ys.len() * m];
        let mut hf = vec![0u8; ys.len() * m];
        snn.hard_decide_block(&ys, &mut hq);
        maxlog.hard_decide_block(&ys, &mut hf);
        assert_eq!(hq, hf);
    }

    #[test]
    fn event_driven_cost_falls_with_snr() {
        let qam = Constellation::qam_gray(16);
        let b = snn_backend(qam.clone(), qam);
        let mut prev = b.cost(-5.0);
        for es in [0.0, 5.0, 10.0, 20.0, 30.0] {
            let c = b.cost(es);
            assert!(c.cycles_per_symbol <= prev.cycles_per_symbol);
            assert!(c.energy_per_symbol_j <= prev.energy_per_symbol_j);
            prev = c;
        }
    }

    #[test]
    fn equalized_wrapper_names_costs_and_isolates_instances() {
        use hybridem_comm::equalizer::EqualizerConfig;
        let qam = Constellation::qam_gray(4);
        let inner: Arc<dyn Backend> =
            Arc::new(max_log_backend("conventional", qam.clone(), qam.clone()));
        let eq = equalized(inner.clone(), EqualizerConfig::default());
        assert_eq!(eq.name(), "conventional+eq");
        assert_eq!(eq.constellation().points(), inner.constellation().points());
        // The FIR stage is pure overhead on the cost axis …
        let (ci, ce) = (inner.cost(12.0), eq.cost(12.0));
        assert!(ce.cycles_per_symbol > ci.cycles_per_symbol);
        assert!(ce.energy_per_symbol_j > ci.energy_per_symbol_j);
        // … and an excess-MSE tax on the predicted-BER axis.
        assert!(eq.predicted_ber(12.0) > inner.predicted_ber(12.0));
        // Every demapper() call hands out a private equalizer: feeding
        // one instance must not perturb another (per-link isolation).
        let a = eq.demapper(12.0);
        let b = eq.demapper(12.0);
        let ys: Vec<C32> = (0..64).map(|k| qam.point(k % 4)).collect();
        let m = a.bits_per_symbol();
        let mut la = vec![0.0f32; ys.len() * m];
        let mut lb = vec![0.0f32; ys.len() * m];
        a.demap_block(&ys, &mut la); // adapts `a`'s equalizer state
        a.demap_block(&ys, &mut la);
        b.demap_block(&ys, &mut lb);
        let mut fresh = vec![0.0f32; ys.len() * m];
        eq.demapper(12.0).demap_block(&ys, &mut fresh);
        assert_eq!(lb, fresh, "instances must not share adaptation state");
        // Both registry line-ups can hold stock and equalized variants
        // side by side (unique names).
        let mut reg = BackendRegistry::new();
        reg.register(inner);
        reg.register(eq);
        assert_eq!(reg.names(), vec!["conventional", "conventional+eq"]);
    }
}
