//! Quantisation-aware fine-tuning of the demapper ANN (DESIGN.md §9).
//!
//! The paper's central claim is that the learned demapper stays
//! accurate *after* fixed-point FPGA implementation. Post-training
//! quantisation alone leaves that to luck at narrow widths; the
//! FINN-style remedy (cf. arXiv:2405.02323, arXiv:2304.06987) is to
//! fine-tune the float network *through* the deployment's quantisation
//! noise, so the optimiser absorbs it. This module implements that
//! flow:
//!
//! 1. **Calibrate** — drive noisy pilot symbols through the trained
//!    float model and fit one fixed-point format per tensor boundary
//!    at the requested width ([`QatConfig::bits`]);
//! 2. **Fine-tune** — rebuild the model with straight-through
//!    [`hybridem_nn::layers::FakeQuant`] casts at every boundary and
//!    run a short demapper-only training loop (mapper frozen, AWGN
//!    pilots at the operating SNR) — training stays in f32 per the §1
//!    substitution policy, only the injected rounding/saturation noise
//!    is quantised;
//! 3. **Deploy** — lower the QAT model to the shared integer IR with
//!    [`hybridem_fpga::graph::compile_qat`]; the graph reads the
//!    trained boundary formats straight out of the model.

use crate::pipeline::HybridPipeline;
use hybridem_comm::constellation::Constellation;
use hybridem_fixed::{QuantSpec, Rounding};
use hybridem_fpga::graph::QuantizedGraph;
use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::rng::{Rng64, Xoshiro256pp};
use hybridem_nn::loss::bce_with_logits;
use hybridem_nn::model::insert_fake_quant;
use hybridem_nn::optim::Optimizer;
use hybridem_nn::{Adam, Sequential};

/// Budget and width of one QAT fine-tuning run.
#[derive(Clone, Debug)]
pub struct QatConfig {
    /// Weight/activation width in bits (the W of W4/W6/W8). The I/O
    /// converter boundaries (ADC input, LLR output) stay at
    /// `bits.max(6)` — they model the fixed bus widths the paper's
    /// design keeps while the datapath width is swept.
    pub bits: u32,
    /// Fine-tuning steps (demapper only, mapper frozen).
    pub steps: usize,
    /// Pilot batch size per step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Calibration sample count for the range fit.
    pub calibration: usize,
    /// RNG seed (calibration noise and pilot stream).
    pub seed: u64,
}

impl QatConfig {
    /// Defaults for one width: 400 steps of 256 pilots at a gentle
    /// fine-tuning rate.
    pub fn at_bits(bits: u32) -> Self {
        Self {
            bits,
            steps: 400,
            batch: 256,
            lr: 1e-3,
            calibration: 2048,
            seed: 0x9a7,
        }
    }
}

/// Result of a QAT fine-tuning run.
pub struct QatOutcome {
    /// The fine-tuned quantisation-aware model (FakeQuant boundaries
    /// carrying the deployment formats).
    pub model: Sequential,
    /// The fitted tensor-boundary specs, in datapath order.
    pub boundaries: Vec<QuantSpec>,
    /// Loss of the first fine-tuning step (quantisation damage).
    pub initial_loss: f32,
    /// Loss of the final step.
    pub final_loss: f32,
}

/// Calibrates tensor-boundary formats and fine-tunes `base` with
/// straight-through fake quantisation: pilots are drawn from the
/// frozen `constellation`, passed through AWGN at `sigma`, and the
/// demapper-only BCE loss is minimised for [`QatConfig::steps`] steps.
pub fn qat_finetune(
    constellation: &Constellation,
    base: &Sequential,
    sigma: f32,
    cfg: &QatConfig,
) -> QatOutcome {
    assert_eq!(base.input_dim(), 2, "demapper models take I/Q inputs");
    assert!(cfg.steps >= 1, "need at least one fine-tuning step");
    // Fail before spending the training budget: the integer IR can
    // only lower dense/ReLU/sigmoid (`fpga::graph::compile_spec`), so
    // reject anything else (e.g. tanh) up front.
    for layer in base.layers() {
        assert!(
            matches!(layer.name(), "dense" | "relu" | "sigmoid"),
            "QAT deploys through the quantized graph, which supports \
             dense/relu/sigmoid only — found `{}`",
            layer.name()
        );
    }
    let m = constellation.bits_per_symbol();
    let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
    let boundaries = calibrate_boundaries(
        constellation,
        base,
        sigma,
        cfg.bits,
        cfg.calibration,
        cfg.seed,
    );

    // 3. Straight-through fine-tuning, mapper frozen.
    let mut model = insert_fake_quant(base, &boundaries);
    let mut opt = Adam::new(cfg.lr);
    let mut initial_loss = f32::NAN;
    let mut final_loss = f32::NAN;
    let mut y = Matrix::zeros(cfg.batch, 2);
    let mut targets = Matrix::zeros(cfg.batch, m);
    for step in 0..cfg.steps {
        for r in 0..cfg.batch {
            let idx = (rng.next_u64() >> (64 - m)) as usize;
            for k in 0..m {
                targets[(r, k)] = ((idx >> (m - 1 - k)) & 1) as f32;
            }
            let p = constellation.point(idx);
            y[(r, 0)] = p.re + sigma * rng.normal_f32();
            y[(r, 1)] = p.im + sigma * rng.normal_f32();
        }
        model.zero_grad();
        let z = model.forward(&y);
        let (loss, grad) = bce_with_logits(&z, &targets);
        model.backward(&grad);
        opt.step(&mut model.params_mut());
        if step == 0 {
            initial_loss = loss;
        }
        final_loss = loss;
    }

    QatOutcome {
        model,
        boundaries,
        initial_loss,
        final_loss,
    }
}

/// Fits one fixed-point format per tensor boundary of `model` by
/// driving `samples` noisy pilot symbols (drawn from `constellation`
/// at noise level `sigma`) through it: input at the ADC width, each
/// hidden activation at `bits`, output at the LLR-bus width
/// (`bits.max(6)` for both I/O converters, matching
/// [`QatConfig::bits`]). This is the calibration half of
/// [`qat_finetune`], exposed on its own because the online runtime
/// ([`crate::runtime`]) recompiles its integer deployment from freshly
/// retrained weights mid-stream, where a full fine-tuning pass would
/// blow the retrain-latency budget.
///
/// Each boundary sits *after* a dense layer's activation (the same
/// placement `insert_fake_quant` uses — keep the peeked activation
/// set here in lock-step with that function), so the range is
/// measured on the post-activation tensor the cast will actually see.
///
/// # Panics
/// Panics if `model` contains layers outside the integer IR's
/// dense/relu/sigmoid vocabulary.
pub fn calibrate_boundaries(
    constellation: &Constellation,
    model: &Sequential,
    sigma: f32,
    bits: u32,
    samples: usize,
    seed: u64,
) -> Vec<QuantSpec> {
    for layer in model.layers() {
        assert!(
            matches!(layer.name(), "dense" | "relu" | "sigmoid"),
            "calibration targets the quantized graph, which supports \
             dense/relu/sigmoid only — found `{}`",
            layer.name()
        );
    }
    // Calibration batch: noisy symbols at the operating point, on a
    // dedicated RNG stream so callers sharing `seed` with a training
    // loop do not correlate with these draws.
    let mut rng = Xoshiro256pp::stream(seed, 40);
    let n_cal = samples.max(64);
    let mut cal = Matrix::zeros(n_cal, 2);
    for r in 0..n_cal {
        let p = constellation.point(r % constellation.size());
        cal[(r, 0)] = p.re + sigma * rng.normal_f32();
        cal[(r, 1)] = p.im + sigma * rng.normal_f32();
    }

    let io_bits = bits.max(6);
    let mut boundaries = vec![QuantSpec::fit_to_data(
        io_bits,
        cal.as_slice(),
        Rounding::Nearest,
    )];
    let mut x = cal;
    let mut dense_seen = 0usize;
    let dense_count = model
        .layers()
        .iter()
        .filter(|l| l.name() == "dense")
        .count();
    let mut iter = model.layers().iter().peekable();
    while let Some(layer) = iter.next() {
        let is_dense = layer.name() == "dense";
        x = layer.infer(&x);
        if is_dense {
            if let Some(next) = iter.peek() {
                if matches!(next.name(), "relu" | "sigmoid") {
                    x = iter.next().unwrap().infer(&x);
                }
            }
            dense_seen += 1;
            let width = if dense_seen == dense_count {
                io_bits
            } else {
                bits
            };
            boundaries.push(QuantSpec::fit(width, x.max_abs() as f64, Rounding::Nearest));
        }
    }
    boundaries
}

/// End-to-end convenience: QAT-fine-tunes the pipeline's trained
/// demapper at the configured width and lowers it to the integer IR.
/// The returned graph is a drop-in `Demapper` for campaigns and link
/// simulations (family label `ann-qat-w{bits}`).
pub fn qat_quantized_demapper(pipe: &HybridPipeline, cfg: &QatConfig) -> QuantizedGraph {
    let constellation = pipe.constellation();
    let outcome = qat_finetune(
        &constellation,
        pipe.ann_demapper().model(),
        pipe.config().sigma(),
        cfg,
    );
    hybridem_fpga::graph::compile_qat(&outcome.model, cfg.bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use hybridem_comm::demapper::Demapper;
    use hybridem_mathkit::complex::C32;
    use hybridem_nn::model::MlpSpec;

    fn base_model(seed: u64) -> Sequential {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        MlpSpec::paper_demapper_logits().build(&mut rng)
    }

    #[test]
    fn finetune_fits_one_boundary_per_tensor_and_improves_loss() {
        let constellation = Constellation::qam_gray(16);
        let base = base_model(1);
        let mut cfg = QatConfig::at_bits(6);
        cfg.steps = 200;
        let out = qat_finetune(&constellation, &base, 0.1, &cfg);
        assert_eq!(out.boundaries.len(), 4);
        // I/O boundaries at the bus width, hidden at the sweep width.
        assert_eq!(out.boundaries[0].format.total_bits, 6);
        assert_eq!(out.boundaries[1].format.total_bits, 6);
        assert_eq!(out.boundaries[3].format.total_bits, 6);
        assert!(
            out.final_loss < out.initial_loss,
            "QAT fine-tuning must reduce the loss: {} → {}",
            out.initial_loss,
            out.final_loss
        );
        // The model round-trips its quant metadata.
        assert_eq!(
            hybridem_nn::model::boundary_specs(&out.model),
            out.boundaries
        );
    }

    #[test]
    fn qat_graph_slots_into_the_demapper_trait() {
        let mut cfg = SystemConfig::fast_test();
        cfg.e2e_steps = 120;
        cfg.batch_size = 64;
        let mut pipe = HybridPipeline::new(cfg);
        let _ = pipe.e2e_train();
        let mut qcfg = QatConfig::at_bits(8);
        qcfg.steps = 40;
        let graph = qat_quantized_demapper(&pipe, &qcfg);
        assert_eq!(graph.weight_bits(), 8);
        assert_eq!(Demapper::bits_per_symbol(&graph), 4);
        let ys = [C32::new(0.4, -0.2), C32::new(-1.0, 0.9)];
        let mut block = [0f32; 8];
        graph.demap_block(&ys, &mut block);
        let mut single = [0f32; 4];
        graph.llrs(ys[1], &mut single);
        for k in 0..4 {
            assert_eq!(block[4 + k].to_bits(), single[k].to_bits());
        }
    }
}
