//! Decision-region sampling and centroid extraction (paper step 3).
//!
//! "First, we sample over the two-dimensional input space of the
//! demapper-ANN to get the learned symbol for each complex input
//! sample. This gives us the decision regions of each symbol. Since
//! this DR-diagram can be interpreted as a Voronoi diagram, we can find
//! a centroid cᵢ for each Voronoi cell …"
//!
//! Two centroid estimators are provided:
//!
//! - **mass centroids** — the mean of all grid cells carrying a label
//!   (robust, never fails for non-empty regions; the default used by
//!   the hybrid demapper);
//! - **vertex centroids** — marching-squares boundary polygons of each
//!   region fed through the shoelace centroid, the literal "centroid
//!   from the vertices of the Voronoi cell" of the paper.
//!
//! [`ExtractionReport::voronoi_disagreement`] measures how close the
//! sampled regions are to the Voronoi partition of the extracted
//! centroids — the paper's implicit claim, validated here.

use crate::demapper_ann::NeuralDemapper;
use hybridem_comm::constellation::Constellation;
use hybridem_geom::components::label_components;
use hybridem_geom::grid::{LabelGrid, Window};
use hybridem_geom::marching::{boundary_centroid, region_boundaries};
use hybridem_geom::voronoi::nearest_site;
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::linsolve::solve_least_squares;
use hybridem_mathkit::vec2::Vec2;

/// Extraction configuration.
#[derive(Clone, Copy, Debug)]
pub struct ExtractionConfig {
    /// Grid cells per axis.
    pub grid_n: usize,
    /// Window half-width as a multiple of the constellation's largest
    /// coordinate. **4/3 is the unbiased choice for square grids**: an
    /// outer cell of a 4×4 lattice spans `[2a, W]` per axis, so its
    /// mass centroid `(2a + W)/2` equals the true point `3a` exactly
    /// when `W = 4a = (4/3)·3a` — larger windows drag outer centroids
    /// outward and visibly shift the max-log decision boundaries.
    pub scale: f64,
    /// Explicit half-width override (ablations).
    pub halfwidth_override: Option<f64>,
}

impl ExtractionConfig {
    /// Default (unbiased) scaling for a grid resolution.
    pub fn new(grid_n: usize, scale: f64) -> Self {
        assert!(grid_n >= 16 && scale > 1.0);
        Self {
            grid_n,
            scale,
            halfwidth_override: None,
        }
    }

    /// Fixed half-width (for window-size ablations).
    pub fn with_halfwidth(grid_n: usize, halfwidth: f64) -> Self {
        assert!(grid_n >= 16 && halfwidth > 0.0);
        Self {
            grid_n,
            scale: 4.0 / 3.0,
            halfwidth_override: Some(halfwidth),
        }
    }

    /// Resolved half-width for a reference constellation.
    pub fn halfwidth(&self, reference: &Constellation) -> f64 {
        if let Some(h) = self.halfwidth_override {
            return h;
        }
        let max_coord = reference
            .points()
            .iter()
            .fold(0.0f32, |m, p| m.max(p.re.abs()).max(p.im.abs()));
        self.scale * max_coord as f64
    }
}

/// Result of an extraction pass.
#[derive(Clone, Debug)]
pub struct ExtractionReport {
    /// The sampled decision regions.
    pub grid: LabelGrid,
    /// Mass centroid per symbol label (the deployable set).
    pub centroids: Vec<C32>,
    /// Polygon-vertex centroid per label (None for labels whose region
    /// was empty or degenerate).
    pub vertex_centroids: Vec<Option<C32>>,
    /// Labels whose decision region was empty — filled with the
    /// fallback (see [`extract`]); non-empty list signals an
    /// under-trained demapper.
    pub missing_labels: Vec<usize>,
    /// Number of connected components per label (1 = clean region).
    pub components: Vec<usize>,
    /// Fraction of grid cells whose sampled label disagrees with the
    /// nearest-extracted-centroid rule (0 = the regions *are* the
    /// Voronoi diagram of the centroids).
    pub voronoi_disagreement: f64,
}

impl ExtractionReport {
    /// The extracted centroids as a labelled constellation, ready for
    /// the conventional max-log demapper.
    pub fn centroid_constellation(&self) -> Constellation {
        Constellation::from_points(self.centroids.clone())
    }
}

/// Samples the demapper's decision regions and extracts centroids.
///
/// `fallback` supplies a point for any label whose decision region is
/// empty within the window (e.g. the frozen mapper constellation); the
/// label is also recorded in `missing_labels`.
pub fn extract(
    demapper: &NeuralDemapper,
    cfg: &ExtractionConfig,
    fallback: &Constellation,
) -> ExtractionReport {
    let m = demapper.bits_per_symbol();
    let num_labels = 1usize << m;
    assert_eq!(fallback.size(), num_labels, "fallback size mismatch");

    // 1. Sample the decision regions — all grid cells in one batched
    //    inference instead of grid_n² single-sample forward passes.
    let window = Window::square(cfg.halfwidth(fallback));
    let centers: Vec<C32> = LabelGrid::cell_centers(window, cfg.grid_n, cfg.grid_n)
        .iter()
        .map(|p| C32::new(p.x as f32, p.y as f32))
        .collect();
    let mut labels = Vec::new();
    demapper.decide_symbols(&centers, &mut labels);
    let grid = LabelGrid::from_labels(
        window,
        cfg.grid_n,
        cfg.grid_n,
        labels.into_iter().map(|l| l as u16).collect(),
    );
    report_from_grid(grid, num_labels, fallback, cfg)
}

/// Shared extraction back-end: robust centroids from a sampled grid.
fn report_from_grid(
    grid: LabelGrid,
    num_labels: usize,
    fallback: &Constellation,
    cfg: &ExtractionConfig,
) -> ExtractionReport {
    // Mass centroids, restricted to each label's *dominant* connected
    // component (a neural demapper produces spurious wedges where it
    // extrapolates far outside the training distribution; they would
    // drag a naive mean) and weighted by the expected received-sample
    // density of a unit-power constellation, exp(−‖p‖²/2(1+2σ²)) ≈
    // exp(−‖p‖²/4) — corners of the window see almost no real samples
    // and should carry almost no centroid mass.
    let comps = label_components(&grid);
    let mut w_sum = vec![0.0f64; num_labels];
    let mut cx = vec![Vec2::zero(); num_labels];
    let mut components = vec![0usize; num_labels];
    let mut dominant = vec![u32::MAX; num_labels];
    for l in 0..num_labels {
        components[l] = comps.count_of_label(l as u16);
        if let Some(d) = comps.dominant_of_label(l as u16) {
            dominant[l] = d;
        }
    }
    for iy in 0..grid.ny() {
        for ix in 0..grid.nx() {
            let l = grid.label(ix, iy) as usize;
            if comps.id_at(&grid, ix, iy) != dominant[l] {
                continue;
            }
            let p = grid.center(ix, iy);
            let w = (-p.norm_sqr() / 4.0).exp();
            w_sum[l] += w;
            cx[l] += p * w;
        }
    }
    let mut centroids: Vec<Option<C32>> = (0..num_labels)
        .map(|l| {
            if w_sum[l] > 0.0 {
                let c = cx[l] / w_sum[l];
                Some(C32::new(c.x as f32, c.y as f32))
            } else {
                None
            }
        })
        .collect();

    // Vertex centroids from marching-squares boundaries, restricted to
    // the dominant loop (largest outer boundary) and its holes.
    let mut vertex_centroids = vec![None::<C32>; num_labels];
    for (l, slot) in vertex_centroids.iter_mut().enumerate() {
        if centroids[l].is_some() {
            let polys = region_boundaries(&grid, l as u16);
            let Some(main) = polys
                .iter()
                .filter(|p| p.signed_area() > 0.0)
                .max_by(|a, b| a.signed_area().total_cmp(&b.signed_area()))
            else {
                continue;
            };
            let kept: Vec<_> = polys
                .iter()
                .filter(|p| {
                    std::ptr::eq(*p, main) || (p.signed_area() < 0.0 && main.contains(p.centroid()))
                })
                .cloned()
                .collect();
            *slot = boundary_centroid(&kept).map(|v| C32::new(v.x as f32, v.y as f32));
        }
    }

    // Fallback for missing labels.
    let mut missing = Vec::new();
    for (l, slot) in centroids.iter_mut().enumerate() {
        if slot.is_none() {
            missing.push(l);
            *slot = Some(fallback.point(l));
        }
    }
    let mut centroids: Vec<C32> = centroids.into_iter().map(Option::unwrap).collect();

    // Bisector refinement: the paper's premise is that the DR diagram
    // *is* a Voronoi diagram — so recover the sites that actually
    // generate the sampled boundaries. Every pair of adjacent grid
    // cells with different labels yields one bisector equation
    // `‖b−s_i‖² = ‖b−s_j‖²` at the edge midpoint `b`; a few damped
    // Gauss–Newton iterations over all equations (anchored softly at
    // the mass centroids) snap the sites onto the partition.
    let mass_centroids = centroids.clone();
    refine_sites_from_boundaries(&grid, &mut centroids, &dominant, &comps);

    // Voronoi consistency: re-decide every grid cell by nearest
    // centroid and count disagreements. The refinement is accepted only
    // if it reproduces the sampled partition at least as well as the
    // plain mass centroids (on badly fragmented partitions — an
    // under-trained demapper — the bisector fit can be ill-posed).
    let disagreement_of = |sites: &[C32]| {
        let pts: Vec<Vec2> = sites
            .iter()
            .map(|c| Vec2::new(c.re as f64, c.im as f64))
            .collect();
        let revoted = LabelGrid::sample(grid.window(), cfg.grid_n, cfg.grid_n, |p| {
            nearest_site(&pts, p) as u16
        });
        grid.disagreement(&revoted)
    };
    let refined_dis = disagreement_of(&centroids);
    let mass_dis = disagreement_of(&mass_centroids);
    let disagreement = if refined_dis <= mass_dis {
        refined_dis
    } else {
        centroids = mass_centroids;
        mass_dis
    };

    ExtractionReport {
        grid,
        centroids,
        vertex_centroids,
        missing_labels: missing,
        components,
        voronoi_disagreement: disagreement,
    }
}

/// Gauss–Newton recovery of Voronoi sites from sampled region
/// boundaries (see the call site in [`report_from_grid`] for context).
fn refine_sites_from_boundaries(
    grid: &LabelGrid,
    sites: &mut [C32],
    dominant: &[u32],
    comps: &hybridem_geom::components::Components,
) {
    // Collect boundary samples (midpoints of adjacent different-label
    // cells, both cells in their label's dominant component).
    let mut samples: Vec<(Vec2, usize, usize, f64)> = Vec::new();
    let keep = |ix: usize, iy: usize| {
        let l = grid.label(ix, iy) as usize;
        comps.id_at(grid, ix, iy) == dominant[l]
    };
    for iy in 0..grid.ny() {
        for ix in 0..grid.nx() {
            let li = grid.label(ix, iy) as usize;
            for (jx, jy) in [(ix + 1, iy), (ix, iy + 1)] {
                if jx >= grid.nx() || jy >= grid.ny() {
                    continue;
                }
                let lj = grid.label(jx, jy) as usize;
                if li == lj || !keep(ix, iy) || !keep(jx, jy) {
                    continue;
                }
                let b = grid.center(ix, iy).midpoint(grid.center(jx, jy));
                // Weight by the expected received-sample density: far
                // boundaries are rarely exercised and are also where the
                // ANN extrapolates worst.
                let w = (-b.norm_sqr() / 4.0).exp();
                samples.push((b, li, lj, w));
            }
        }
    }
    if samples.len() < sites.len() {
        return; // not enough structure to fit
    }

    let n = sites.len();
    let n_unknowns = 2 * n;
    let anchors: Vec<Vec2> = sites
        .iter()
        .map(|c| Vec2::new(c.re as f64, c.im as f64))
        .collect();
    let mut cur = anchors.clone();
    for _ in 0..6 {
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(samples.len() + n_unknowns);
        let mut rhs: Vec<f64> = Vec::with_capacity(samples.len() + n_unknowns);
        for &(b, i, j, w) in &samples {
            // Residual r = ‖b−s_i‖² − ‖b−s_j‖² (want 0).
            let di = b - cur[i];
            let dj = b - cur[j];
            let r = di.norm_sqr() - dj.norm_sqr();
            // ∂r/∂s_i = −2(b−s_i); ∂r/∂s_j = +2(b−s_j).
            let mut row = vec![0.0; n_unknowns];
            row[2 * i] = -2.0 * di.x * w;
            row[2 * i + 1] = -2.0 * di.y * w;
            row[2 * j] = 2.0 * dj.x * w;
            row[2 * j + 1] = 2.0 * dj.y * w;
            rows.push(row);
            rhs.push(-r * w);
        }
        // Soft anchor to the mass centroids (fixes sites whose cells
        // contribute few boundary samples, e.g. fallback labels, and
        // selects a member of the bisector null space — sliding a pair
        // of sites symmetrically about their shared boundary changes no
        // equation). Scaled with the data so its relative strength is
        // resolution-independent.
        let total_w: f64 = samples.iter().map(|&(_, _, _, w)| w * w).sum();
        let anchor_w = 0.15 * (total_w / n as f64).sqrt();
        for (k, a) in anchors.iter().enumerate() {
            let mut row = vec![0.0; n_unknowns];
            row[2 * k] = anchor_w;
            rows.push(row);
            rhs.push(anchor_w * (a.x - cur[k].x));
            let mut row = vec![0.0; n_unknowns];
            row[2 * k + 1] = anchor_w;
            rows.push(row);
            rhs.push(anchor_w * (a.y - cur[k].y));
        }
        let Some(delta) = solve_least_squares(&rows, &rhs, n_unknowns, 1e-9) else {
            break;
        };
        // Trust region: cap the per-coordinate step so one bad
        // iteration cannot fling a site across the plane.
        const MAX_STEP: f64 = 0.08;
        let mut biggest = 0.0f64;
        for k in 0..n {
            cur[k].x += delta[2 * k].clamp(-MAX_STEP, MAX_STEP);
            cur[k].y += delta[2 * k + 1].clamp(-MAX_STEP, MAX_STEP);
            biggest = biggest.max(delta[2 * k].abs()).max(delta[2 * k + 1].abs());
        }
        if biggest < 1e-6 {
            break;
        }
    }
    for (s, c) in sites.iter_mut().zip(&cur) {
        *s = C32::new(c.x as f32, c.y as f32);
    }
}

/// Extraction against a *conventional* demapper's decision function —
/// used by tests and the grid-resolution ablation: sampling the
/// max-log decisions of a known constellation must recover (nearly)
/// that constellation's Voronoi structure.
pub fn extract_from_decider(
    decide: impl Fn(C32) -> usize,
    m: usize,
    cfg: &ExtractionConfig,
    fallback: &Constellation,
) -> ExtractionReport {
    let num_labels = 1usize << m;
    assert_eq!(fallback.size(), num_labels);
    let window = Window::square(cfg.halfwidth(fallback));
    let grid = LabelGrid::sample(window, cfg.grid_n, cfg.grid_n, |p| {
        decide(C32::new(p.x as f32, p.y as f32)) as u16
    });
    report_from_grid(grid, num_labels, fallback, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Extraction on the *known* max-log decisions of Gray 16-QAM: the
    /// gold-standard correctness check, no training involved.
    #[test]
    fn recovers_qam_voronoi_structure() {
        let qam = Constellation::qam_gray(16);
        let cfg = ExtractionConfig::new(160, 4.0 / 3.0);
        let report = extract_from_decider(|y| qam.nearest(y), 4, &cfg, &qam);
        assert!(report.missing_labels.is_empty());
        assert!(report.components.iter().all(|&c| c == 1));
        // Mass centroids lie in the correct cells: re-deciding with them
        // reproduces the sampled regions almost exactly.
        assert!(
            report.voronoi_disagreement < 0.02,
            "disagreement {}",
            report.voronoi_disagreement
        );
        // Inner cells' centroids sit exactly on the constellation
        // points; outer cells are pulled outward by the window, but
        // nearest-point labels still match.
        for (u, c) in report.centroids.iter().enumerate() {
            assert_eq!(qam.nearest(*c), u, "centroid {u} in the wrong cell");
        }
    }

    #[test]
    fn inner_cell_mass_centroid_matches_point() {
        // An interior 16-QAM cell is a square centred on the point, so
        // the mass centroid must match it to grid resolution.
        let qam = Constellation::qam_gray(16);
        let cfg = ExtractionConfig::new(200, 4.0 / 3.0);
        let report = extract_from_decider(|y| qam.nearest(y), 4, &cfg, &qam);
        // Find the label of an inner point (|re|, |im| = 1/√10 ≈ 0.316).
        let inner = (0..16)
            .find(|&u| {
                let p = qam.point(u);
                p.re > 0.0 && p.im > 0.0 && p.re < 0.5 && p.im < 0.5
            })
            .unwrap();
        let c = report.centroids[inner];
        let p = qam.point(inner);
        assert!(c.dist_sqr(p).sqrt() < 0.03, "centroid {c} vs point {p}");
        // The vertex centroid agrees with the mass centroid for a
        // convex interior cell.
        let vc = report.vertex_centroids[inner].unwrap();
        assert!(vc.dist_sqr(c).sqrt() < 0.03, "vertex {vc} vs mass {c}");
    }

    #[test]
    fn rotated_decider_yields_rotated_centroids() {
        // The adaptability mechanism: a rotated decision rule must
        // produce rotated centroids.
        let theta = std::f32::consts::FRAC_PI_4;
        let qam = Constellation::qam_gray(16);
        let rot = qam.rotated(theta);
        let cfg = ExtractionConfig::new(160, 4.0 / 3.0);
        let report = extract_from_decider(|y| rot.nearest(y), 4, &cfg, &qam);
        for u in 0..16 {
            let c = report.centroids[u];
            // Nearest rotated point carries the right label.
            assert_eq!(rot.nearest(c), u);
        }
    }

    #[test]
    fn missing_labels_fall_back() {
        // A decider that never outputs label 0.
        let qam = Constellation::qam_gray(16);
        let cfg = ExtractionConfig::new(64, 4.0 / 3.0);
        let report = extract_from_decider(
            |y| {
                let u = qam.nearest(y);
                if u == 0 {
                    1
                } else {
                    u
                }
            },
            4,
            &cfg,
            &qam,
        );
        assert_eq!(report.missing_labels, vec![0]);
        assert_eq!(report.centroids[0], qam.point(0));
    }

    #[test]
    fn finer_grid_reduces_centroid_error() {
        let qam = Constellation::qam_gray(16);
        let mut errs = Vec::new();
        for n in [32usize, 64, 128] {
            let cfg = ExtractionConfig::new(n, 4.0 / 3.0);
            let report = extract_from_decider(|y| qam.nearest(y), 4, &cfg, &qam);
            // Mean distance of inner-cell centroids to their points.
            let mut err = 0.0f64;
            let mut count = 0;
            for u in 0..16 {
                let p = qam.point(u);
                if p.re.abs() < 0.5 && p.im.abs() < 0.5 {
                    err += report.centroids[u].dist_sqr(p).sqrt() as f64;
                    count += 1;
                }
            }
            errs.push(err / count as f64);
        }
        assert!(
            errs[2] <= errs[0] + 1e-4,
            "finer grids must not be worse: {errs:?}"
        );
    }
}
