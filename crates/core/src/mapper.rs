//! The neural mapper: trainable constellation.
//!
//! Paper §III-A: "the mapper consists of a trainable embedding layer
//! with 16 inputs and two outputs as well as an average power
//! normalization layer". [`NeuralMapper`] composes exactly those two
//! pieces and exposes the learned constellation to the rest of the
//! system.

use hybridem_comm::constellation::Constellation;
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::matrix::Matrix;
use hybridem_mathkit::rng::Xoshiro256pp;
use hybridem_nn::layer::Param;
use hybridem_nn::layers::{Embedding, PowerNorm};

/// Embedding + average-power normalisation.
pub struct NeuralMapper {
    embedding: Embedding,
    norm: PowerNorm,
    cached_indices: Vec<usize>,
}

impl NeuralMapper {
    /// Fresh mapper with `num_symbols` random points.
    pub fn new(num_symbols: usize, rng: &mut Xoshiro256pp) -> Self {
        Self {
            embedding: Embedding::new(num_symbols, 2, 1.0, rng),
            norm: PowerNorm::new(),
            cached_indices: Vec::new(),
        }
    }

    /// Mapper seeded from an existing constellation (e.g. Gray 16-QAM,
    /// used by the convergence ablation).
    pub fn from_constellation(c: &Constellation) -> Self {
        let mut table = Matrix::zeros(c.size(), 2);
        for (r, p) in c.points().iter().enumerate() {
            table.row_mut(r).copy_from_slice(&[p.re, p.im]);
        }
        Self {
            embedding: Embedding::from_table(table),
            norm: PowerNorm::new(),
            cached_indices: Vec::new(),
        }
    }

    /// Number of symbols.
    pub fn num_symbols(&self) -> usize {
        self.embedding.num_symbols()
    }

    /// Maps a batch of symbol indices to normalised I/Q points
    /// (`batch × 2`), caching for backward.
    pub fn forward(&mut self, indices: &[usize]) -> Matrix<f32> {
        // Normalise the whole table, then gather — the constraint is a
        // property of the codebook, not of the batch.
        let normed = self.norm.forward(self.embedding.table());
        self.cached_indices.clear();
        self.cached_indices.extend_from_slice(indices);
        let mut out = Matrix::zeros(indices.len(), 2);
        for (r, &idx) in indices.iter().enumerate() {
            out.row_mut(r).copy_from_slice(normed.row(idx));
        }
        out
    }

    /// Pure inference (no caches): the current normalised codebook.
    pub fn constellation(&self) -> Constellation {
        let table = self.embedding.table();
        let p = PowerNorm::avg_power(table).sqrt();
        let points: Vec<C32> = (0..table.rows())
            .map(|r| C32::new(table[(r, 0)] / p, table[(r, 1)] / p))
            .collect();
        Constellation::from_points(points)
    }

    /// Backward: scatter the batch gradient into table rows, then pull
    /// it through the power-norm Jacobian into the embedding gradient.
    pub fn backward(&mut self, grad_points: &Matrix<f32>) {
        assert_eq!(
            grad_points.rows(),
            self.cached_indices.len(),
            "batch mismatch"
        );
        assert_eq!(grad_points.cols(), 2);
        // Scatter batch gradients to (normalised-)table gradients.
        let mut grad_table = Matrix::zeros(self.embedding.num_symbols(), 2);
        for (r, &idx) in self.cached_indices.iter().enumerate() {
            for (g, &v) in grad_table.row_mut(idx).iter_mut().zip(grad_points.row(r)) {
                *g += v;
            }
        }
        // Through the normalisation Jacobian.
        let grad_raw = self.norm.backward(&grad_table);
        // Into the embedding parameter: emulate a gather of the whole
        // table (identity indices) so the scatter-add hits every row.
        let all: Vec<usize> = (0..self.embedding.num_symbols()).collect();
        let _ = self.embedding.forward(&all);
        self.embedding.backward(&grad_raw);
    }

    /// The trainable parameter (for optimisers).
    pub fn param_mut(&mut self) -> &mut Param {
        self.embedding.param_mut()
    }

    /// Read-only parameter access.
    pub fn param(&self) -> &Param {
        self.embedding.param()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_produces_unit_power_codebook() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut m = NeuralMapper::new(16, &mut rng);
        let all: Vec<usize> = (0..16).collect();
        let pts = m.forward(&all);
        let p: f32 = pts.as_slice().iter().map(|v| v * v).sum::<f32>() / 16.0;
        assert!((p - 1.0).abs() < 1e-5, "avg power {p}");
    }

    #[test]
    fn constellation_matches_forward() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut m = NeuralMapper::new(16, &mut rng);
        let c = m.constellation();
        let all: Vec<usize> = (0..16).collect();
        let pts = m.forward(&all);
        for u in 0..16 {
            assert!((c.point(u).re - pts[(u, 0)]).abs() < 1e-6);
            assert!((c.point(u).im - pts[(u, 1)]).abs() < 1e-6);
        }
        assert!((c.avg_energy() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn seeded_from_qam_reproduces_qam() {
        let qam = Constellation::qam_gray(16);
        let mut m = NeuralMapper::from_constellation(&qam);
        let c = m.constellation();
        for u in 0..16 {
            assert!(c.point(u).dist_sqr(qam.point(u)) < 1e-10);
        }
        let _ = m.forward(&[3, 7]);
    }

    #[test]
    fn gradient_descent_moves_a_point_toward_target() {
        // Minimise ‖x_0 − t‖² through forward/backward: point 0 must
        // approach the target direction (up to the power constraint).
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut m = NeuralMapper::new(4, &mut rng);
        let target = [1.2f32, -0.4];
        let mut opt = hybridem_nn::Adam::new(0.05);
        use hybridem_nn::optim::Optimizer;
        for _ in 0..300 {
            m.param_mut().zero_grad();
            let pts = m.forward(&[0]);
            let g = Matrix::from_rows(&[&[
                2.0 * (pts[(0, 0)] - target[0]),
                2.0 * (pts[(0, 1)] - target[1]),
            ]]);
            m.backward(&g);
            opt.step(&mut [m.param_mut()]);
        }
        let c = m.constellation();
        let p0 = c.point(0);
        // Direction aligned with the target (power constraint limits
        // magnitude, not direction).
        let dot = p0.re * target[0] + p0.im * target[1];
        assert!(dot > 0.5, "point 0 = {p0} not aligned with target");
        // Codebook still unit power.
        assert!((c.avg_energy() - 1.0).abs() < 1e-4);
    }
}
