//! # hybridem-core
//!
//! The paper's contribution: a hybrid demapper that combines the
//! adaptability of autoencoder-based communication with the hardware
//! efficiency of conventional max-log demapping.
//!
//! The three-phase flow of the paper's Fig. 1 maps onto this crate as:
//!
//! 1. **E2E training** ([`e2e`]) — the neural mapper ([`mapper`]) and
//!    demapper ([`demapper_ann`]) train jointly over a differentiable
//!    channel model (AWGN ± static rotation) with bitwise BCE loss.
//! 2. **Retraining** ([`retrain`]) — the mapper constellation freezes;
//!    the demapper retrains against the *actual* channel from pilot
//!    symbols, optionally charged against the FPGA trainer cost model.
//! 3. **Inference** ([`extraction`], [`hybrid`]) — the demapper's
//!    decision regions are sampled over the I/Q plane, one centroid per
//!    region is extracted (mass- and polygon-vertex-based), and the
//!    conventional suboptimal soft demapper runs on those centroids.
//!    [`adapt::AdaptationController`] watches pilot BER or ECC
//!    corrected-flip counts and triggers re-entry into phase 2.
//!
//! [`pipeline::HybridPipeline`] ties the phases together;
//! [`eval`] regenerates the paper's BER comparisons; [`qat`]
//! quantisation-aware-fine-tunes the demapper for fixed-point
//! deployment through the shared integer IR (DESIGN.md §9);
//! [`runtime`] streams frames through scripted time-varying channels
//! and exercises the full trigger→retrain→redeploy loop online
//! (DESIGN.md §10); [`server`] multiplexes thousands of independent
//! link sessions over a work-stealing pool with cross-link batched
//! demapping (DESIGN.md §12); [`viz`] renders decision regions
//! (Fig. 3) as ASCII/PGM.

#![warn(missing_docs)]

pub mod adapt;
pub mod config;
pub mod demapper_ann;
pub mod e2e;
pub mod eval;
pub mod extraction;
pub mod hybrid;
pub mod mapper;
pub mod pilot_centroids;
pub mod pipeline;
pub mod qat;
pub mod registry;
pub mod retrain;
pub mod runtime;
pub mod server;
pub mod viz;

pub use config::SystemConfig;
pub use pipeline::HybridPipeline;
