//! Data-aided centroid estimation — the classical baseline the
//! paper's geometric extraction competes against.
//!
//! A receiver that already transmits pilots for retraining could also
//! estimate the post-channel constellation *directly*: average the
//! received samples of each known pilot symbol (the conditional mean
//! `E[y | x = c_u]`, which over AWGN converges to the channel-distorted
//! constellation point). This needs no neural network at all — but it
//! only captures effects expressible as a constellation shift, while
//! the ANN's decision regions can also encode non-Gaussian boundary
//! shapes. Comparing the two isolates what the learned demapper
//! actually contributes (see `tests/` and the pilot-vs-extraction
//! integration test).

use hybridem_comm::channel::Channel;
use hybridem_comm::constellation::Constellation;
use hybridem_mathkit::complex::C32;
use hybridem_mathkit::rng::{Rng64, Xoshiro256pp};

/// Streaming estimator of per-symbol conditional means.
#[derive(Clone, Debug)]
pub struct PilotCentroidEstimator {
    sums: Vec<C32>,
    counts: Vec<u64>,
}

impl PilotCentroidEstimator {
    /// Estimator for `m` symbols.
    pub fn new(num_symbols: usize) -> Self {
        assert!(num_symbols >= 2);
        Self {
            sums: vec![C32::zero(); num_symbols],
            counts: vec![0; num_symbols],
        }
    }

    /// Records one received pilot with its known transmitted label.
    pub fn observe(&mut self, label: usize, received: C32) {
        self.sums[label] += received;
        self.counts[label] += 1;
    }

    /// Number of observations for `label`.
    pub fn count(&self, label: usize) -> u64 {
        self.counts[label]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Current centroid estimates; labels never observed fall back to
    /// the supplied constellation point.
    pub fn centroids(&self, fallback: &Constellation) -> Constellation {
        assert_eq!(fallback.size(), self.sums.len());
        let points: Vec<C32> = self
            .sums
            .iter()
            .zip(&self.counts)
            .enumerate()
            .map(|(u, (&s, &n))| {
                if n == 0 {
                    fallback.point(u)
                } else {
                    s.scale(1.0 / n as f32)
                }
            })
            .collect();
        Constellation::from_points(points)
    }
}

/// Convenience: transmits `n_pilots` known random symbols through
/// `channel` and returns the estimated post-channel constellation.
pub fn estimate_from_pilots(
    constellation: &Constellation,
    channel: &mut dyn Channel,
    n_pilots: usize,
    seed: u64,
) -> Constellation {
    let m = constellation.bits_per_symbol();
    let mut rng = Xoshiro256pp::stream(seed, 7);
    let mut est = PilotCentroidEstimator::new(constellation.size());
    let mut block = vec![C32::zero(); 256];
    let mut labels = vec![0usize; 256];
    let mut sent = 0usize;
    while sent < n_pilots {
        let n = block.len().min(n_pilots - sent);
        for i in 0..n {
            labels[i] = (rng.next_u64() >> (64 - m)) as usize;
            block[i] = constellation.point(labels[i]);
        }
        channel.transmit(&mut block[..n], &mut rng);
        for i in 0..n {
            est.observe(labels[i], block[i]);
        }
        sent += n;
    }
    est.centroids(constellation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_comm::channel::{Awgn, ChannelChain};

    #[test]
    fn recovers_clean_constellation() {
        let qam = Constellation::qam_gray(16);
        let mut ch = Awgn::new(0.1);
        let est = estimate_from_pilots(&qam, &mut ch, 16_000, 3);
        for u in 0..16 {
            let d = est.point(u).dist_sqr(qam.point(u)).sqrt();
            // σ/√n per dimension with n ≈ 1000 per symbol.
            assert!(d < 0.02, "symbol {u}: drift {d}");
        }
    }

    #[test]
    fn recovers_rotated_constellation() {
        let theta = std::f32::consts::FRAC_PI_4;
        let qam = Constellation::qam_gray(16);
        let mut ch = ChannelChain::phase_then_awgn(theta, 14.0);
        let est = estimate_from_pilots(&qam, &mut ch, 32_000, 5);
        let rotated = qam.rotated(theta);
        for u in 0..16 {
            let d = est.point(u).dist_sqr(rotated.point(u)).sqrt();
            assert!(d < 0.03, "symbol {u}: drift {d}");
        }
    }

    #[test]
    fn unobserved_labels_fall_back() {
        let qam = Constellation::qam_gray(16);
        let mut est = PilotCentroidEstimator::new(16);
        est.observe(3, C32::new(0.5, 0.5));
        let c = est.centroids(&qam);
        assert_eq!(c.point(3), C32::new(0.5, 0.5));
        assert_eq!(c.point(7), qam.point(7));
        assert_eq!(est.total(), 1);
        assert_eq!(est.count(3), 1);
        assert_eq!(est.count(7), 0);
    }

    #[test]
    fn estimate_improves_with_pilot_count() {
        let qam = Constellation::qam_gray(16);
        let drift = |n: usize| {
            let mut ch = Awgn::new(0.3);
            let est = estimate_from_pilots(&qam, &mut ch, n, 11);
            (0..16)
                .map(|u| est.point(u).dist_sqr(qam.point(u)).sqrt() as f64)
                .sum::<f64>()
                / 16.0
        };
        let coarse = drift(800);
        let fine = drift(51_200);
        // 64× pilots ⇒ ~8× lower standard error.
        assert!(fine < coarse * 0.5, "{coarse} → {fine}");
    }
}
