//! Evaluation harness: the BER comparisons of Fig. 2 and Table 1.
//!
//! Three receivers are compared throughout the paper:
//!
//! 1. **conventional** — Gray 16-QAM transmitter + max-log demapper
//!    with perfect knowledge of the (unrotated) constellation;
//! 2. **AE-inference** — the learned constellation, demapped by the
//!    trained ANN itself;
//! 3. **hybrid (centroid extraction)** — the learned constellation,
//!    demapped by the conventional max-log algorithm running on the
//!    centroids extracted from the trained ANN.

use hybridem_comm::channel::Channel;
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::Demapper;
use hybridem_comm::linksim::{simulate_link, LinkSpec};

/// One measured operating point.
#[derive(Clone, Debug)]
pub struct BerPoint {
    /// Receiver label.
    pub receiver: String,
    /// SNR in dB (Eb/N0, the paper's axis).
    pub snr_db: f64,
    /// Bit error rate.
    pub ber: f64,
    /// 95 % Wilson interval of the BER.
    pub ber_ci: (f64, f64),
    /// Symbol error rate.
    pub ser: f64,
    /// Bitwise mutual information (bits per bit).
    pub mi: f64,
    /// Simulated bits.
    pub bits: u64,
    /// Observed bit errors.
    pub bit_errors: u64,
}

hybridem_mathkit::impl_to_json!(BerPoint {
    receiver,
    snr_db,
    ber,
    ber_ci,
    ser,
    mi,
    bits,
    bit_errors,
});

/// Measures one receiver on one channel.
pub fn measure(
    receiver: &str,
    snr_db: f64,
    constellation: &Constellation,
    channel: &dyn Channel,
    demapper: &dyn Demapper,
    symbols: u64,
    seed: u64,
) -> BerPoint {
    let spec = LinkSpec::new(constellation, channel, demapper, symbols, seed);
    let r = simulate_link(&spec);
    BerPoint {
        receiver: receiver.to_string(),
        snr_db,
        ber: r.ber(),
        ber_ci: r.bit_errors.wilson_interval(1.96),
        ser: r.ser(),
        mi: r.mi.mi(),
        bits: r.bit_errors.trials(),
        bit_errors: r.bit_errors.errors(),
    }
}

/// Renders points as a Markdown table (EXPERIMENTS.md format).
pub fn markdown_table(points: &[BerPoint]) -> String {
    let mut s = String::from(
        "| Receiver | SNR [dB] | BER | 95% CI | SER | bitwise MI |\n|---|---|---|---|---|---|\n",
    );
    for p in points {
        s.push_str(&format!(
            "| {} | {} | {:.4e} | [{:.2e}, {:.2e}] | {:.4e} | {:.3} |\n",
            p.receiver, p.snr_db, p.ber, p.ber_ci.0, p.ber_ci.1, p.ser, p.mi
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_comm::channel::Awgn;
    use hybridem_comm::demapper::MaxLogMap;
    use hybridem_comm::snr::{ebn0_to_esn0_db, noise_sigma};
    use hybridem_comm::theory::ber_qam16_gray;

    #[test]
    fn measure_matches_theory_for_conventional() {
        let snr_db = 4.0; // Eb/N0
        let es_n0 = ebn0_to_esn0_db(snr_db, 4);
        let sigma = noise_sigma(es_n0, 1.0) as f32;
        let qam = Constellation::qam_gray(16);
        let channel = Awgn::new(sigma);
        let demapper = MaxLogMap::new(qam.clone(), sigma);
        let p = measure(
            "conventional",
            snr_db,
            &qam,
            &channel,
            &demapper,
            200_000,
            3,
        );
        let theory = ber_qam16_gray(es_n0);
        assert!(
            p.ber_ci.0 * 0.8 <= theory && theory <= p.ber_ci.1 * 1.2,
            "theory {theory} vs CI {:?}",
            p.ber_ci
        );
        assert!(p.mi > 0.5 && p.mi <= 1.0);
        assert_eq!(p.bits, p.bit_errors + (p.bits - p.bit_errors));
    }

    #[test]
    fn markdown_renders_rows() {
        let p = BerPoint {
            receiver: "x".into(),
            snr_db: 8.0,
            ber: 1e-2,
            ber_ci: (0.9e-2, 1.1e-2),
            ser: 3e-2,
            mi: 0.93,
            bits: 1000,
            bit_errors: 10,
        };
        let md = markdown_table(&[p]);
        assert!(md.contains("| x | 8 |"));
        assert_eq!(md.lines().count(), 3);
    }
}
