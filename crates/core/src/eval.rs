//! Evaluation harness: the BER comparisons of Fig. 2 and Table 1.
//!
//! Three receivers are compared throughout the paper:
//!
//! 1. **conventional** — Gray 16-QAM transmitter + max-log demapper
//!    with perfect knowledge of the (unrotated) constellation;
//! 2. **AE-inference** — the learned constellation, demapped by the
//!    trained ANN itself;
//! 3. **hybrid (centroid extraction)** — the learned constellation,
//!    demapped by the conventional max-log algorithm running on the
//!    centroids extracted from the trained ANN.

//!
//! For SNR-sweep campaigns ([`hybridem_comm::campaign`]), the same
//! receivers — plus the bit-exact fixed-point FPGA accelerator model —
//! are exposed as [`campaign_families`], and the paper's channel
//! impairments as [`paper_scenarios`]; both interpret the campaign's
//! grid values as **Eb/N0 in dB** (the paper's axis).

use crate::pipeline::HybridPipeline;
use crate::registry::{paper_registry, BackendRegistry};
use hybridem_comm::campaign::{ChannelScenario, DemapperFamily};
use hybridem_comm::channel::{Awgn, Channel, ChannelChain, IqImbalance, RayleighBlockFading};
use hybridem_comm::constellation::Constellation;
use hybridem_comm::demapper::Demapper;
use hybridem_comm::linksim::{simulate_link, LinkSpec};
use hybridem_comm::snr::ebn0_to_esn0_db;
use hybridem_fpga::demapper_accel::SoftDemapperConfig;
use hybridem_fpga::graph::QuantizedGraph;

/// One measured operating point.
#[derive(Clone, Debug)]
pub struct BerPoint {
    /// Receiver label.
    pub receiver: String,
    /// SNR in dB (Eb/N0, the paper's axis).
    pub snr_db: f64,
    /// Bit error rate.
    pub ber: f64,
    /// 95 % Wilson interval of the BER.
    pub ber_ci: (f64, f64),
    /// Symbol error rate.
    pub ser: f64,
    /// Bitwise mutual information (bits per bit).
    pub mi: f64,
    /// Simulated bits.
    pub bits: u64,
    /// Observed bit errors.
    pub bit_errors: u64,
}

hybridem_mathkit::impl_to_json!(BerPoint {
    receiver,
    snr_db,
    ber,
    ber_ci,
    ser,
    mi,
    bits,
    bit_errors,
});

/// Measures one receiver on one channel.
pub fn measure(
    receiver: &str,
    snr_db: f64,
    constellation: &Constellation,
    channel: &dyn Channel,
    demapper: &dyn Demapper,
    symbols: u64,
    seed: u64,
) -> BerPoint {
    let spec = LinkSpec::new(constellation, channel, demapper, symbols, seed);
    let r = simulate_link(&spec);
    BerPoint {
        receiver: receiver.to_string(),
        snr_db,
        ber: r.ber(),
        ber_ci: r.bit_errors.wilson_interval(1.96),
        ser: r.ser(),
        mi: r.mi.mi(),
        bits: r.bit_errors.trials(),
        bit_errors: r.bit_errors.errors(),
    }
}

/// Lowers a backend registry to campaign demapper families, one per
/// entry in registration order (grid SNR = **Eb/N0 in dB**, converted
/// to the registry's Es/N0 axis per family's symbol width). The
/// builders capture shared backend handles, so the returned families
/// own everything and outlive the registry borrow.
pub fn registry_families(registry: &BackendRegistry) -> Vec<DemapperFamily<'static>> {
    registry
        .iter()
        .map(|(_, b)| {
            let m = b.constellation().bits_per_symbol();
            let backend = b.clone();
            DemapperFamily::new(
                backend.name().to_string(),
                b.constellation().clone(),
                Box::new(move |snr| {
                    Box::new(backend.demapper(ebn0_to_esn0_db(snr, m))) as Box<dyn Demapper>
                }),
            )
        })
        .collect()
}

/// The paper's receiver line-up as campaign demapper families: the
/// full [`paper_registry`] enumerated through [`registry_families`]
/// (grid SNR = **Eb/N0 in dB**):
///
/// 1. `conventional` — Gray QAM + max-log with the true constellation;
/// 2. `AE-inference` — the learned constellation demapped by the
///    trained ANN itself (a shared bit-identical copy of the trained
///    network);
/// 3. `hybrid-centroids` — max-log on the extracted centroids;
/// 4. `fixed-point-accel` — the bit-exact integer model of the FPGA
///    soft-demapper accelerator running on the same centroids;
/// 5. one `ann-qat-w{bits}` family per entry of `quantized` — the
///    QAT-fine-tuned ANN lowered to the shared integer IR
///    ([`hybridem_fpga::graph`], DESIGN.md §9), shared per grid
///    point like the float ANN. Sweeping W4/W6/W8 here is what puts
///    the BER-vs-bitwidth trade-off into the waterfall artefact;
/// 6. `exact-logmap` — the optimal bitwise demapper on Gray QAM; and
/// 7. `snn-event` — the event-driven/spiking readout stub on the
///    extracted centroids.
///
/// Families 1–5 are byte-identical to the hand-built list this
/// function replaced (pinned by `tests/registry_determinism.rs`).
///
/// # Panics
/// Panics unless [`HybridPipeline::extract_centroids`] ran (the
/// centroid-backed families need the extracted set).
pub fn campaign_families(
    pipe: &HybridPipeline,
    accel_cfg: SoftDemapperConfig,
    quantized: &[QuantizedGraph],
) -> Vec<DemapperFamily<'static>> {
    registry_families(&paper_registry(pipe, &accel_cfg, quantized))
}

/// The paper's channel impairments as campaign scenarios
/// (grid SNR = **Eb/N0 in dB** for a `bits`-bit symbol): pure AWGN,
/// the π/4 phase-offset study, IQ imbalance, and block Rayleigh
/// fading — each with AWGN at the grid SNR applied last.
pub fn paper_scenarios(bits: usize) -> Vec<ChannelScenario<'static>> {
    vec![
        ChannelScenario::new(
            "awgn",
            Box::new(move |snr| Box::new(Awgn::from_es_n0_db(ebn0_to_esn0_db(snr, bits)))),
        ),
        ChannelScenario::new(
            "phase-pi4+awgn",
            Box::new(move |snr| {
                Box::new(ChannelChain::phase_then_awgn(
                    std::f32::consts::FRAC_PI_4,
                    ebn0_to_esn0_db(snr, bits),
                ))
            }),
        ),
        ChannelScenario::new(
            "iq-imbalance+awgn",
            Box::new(move |snr| {
                Box::new(ChannelChain::new(vec![
                    Box::new(IqImbalance::new(0.05, 0.05)),
                    Box::new(Awgn::from_es_n0_db(ebn0_to_esn0_db(snr, bits))),
                ]))
            }),
        ),
        ChannelScenario::new(
            "rayleigh64+awgn",
            Box::new(move |snr| {
                Box::new(ChannelChain::new(vec![
                    Box::new(RayleighBlockFading::new(64)),
                    Box::new(Awgn::from_es_n0_db(ebn0_to_esn0_db(snr, bits))),
                ]))
            }),
        ),
    ]
}

/// Renders points as a Markdown table (EXPERIMENTS.md format).
pub fn markdown_table(points: &[BerPoint]) -> String {
    let mut s = String::from(
        "| Receiver | SNR [dB] | BER | 95% CI | SER | bitwise MI |\n|---|---|---|---|---|---|\n",
    );
    for p in points {
        s.push_str(&format!(
            "| {} | {} | {:.4e} | [{:.2e}, {:.2e}] | {:.4e} | {:.3} |\n",
            p.receiver, p.snr_db, p.ber, p.ber_ci.0, p.ber_ci.1, p.ser, p.mi
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_comm::channel::Awgn;
    use hybridem_comm::demapper::MaxLogMap;
    use hybridem_comm::snr::{ebn0_to_esn0_db, noise_sigma};
    use hybridem_comm::theory::ber_qam16_gray;

    #[test]
    fn measure_matches_theory_for_conventional() {
        let snr_db = 4.0; // Eb/N0
        let es_n0 = ebn0_to_esn0_db(snr_db, 4);
        let sigma = noise_sigma(es_n0, 1.0) as f32;
        let qam = Constellation::qam_gray(16);
        let channel = Awgn::new(sigma);
        let demapper = MaxLogMap::new(qam.clone(), sigma);
        let p = measure(
            "conventional",
            snr_db,
            &qam,
            &channel,
            &demapper,
            200_000,
            3,
        );
        let theory = ber_qam16_gray(es_n0);
        assert!(
            p.ber_ci.0 * 0.8 <= theory && theory <= p.ber_ci.1 * 1.2,
            "theory {theory} vs CI {:?}",
            p.ber_ci
        );
        assert!(p.mi > 0.5 && p.mi <= 1.0);
        assert_eq!(p.bits, p.bit_errors + (p.bits - p.bit_errors));
    }

    #[test]
    fn campaign_families_cover_the_paper_line_up() {
        use crate::config::SystemConfig;
        use hybridem_comm::campaign::{run_campaign, CampaignSpec, EarlyStop};

        // Untrained network: centroids are meaningless but extraction's
        // fallback still yields a full labelled set, which is all the
        // wiring test needs.
        let mut pipe = HybridPipeline::new(SystemConfig::fast_test());
        let _ = pipe.extract_centroids();
        // One quantised family rides along: the W8 graph compiled
        // straight from the (untrained) demapper model.
        let mut qcfg = crate::qat::QatConfig::at_bits(8);
        qcfg.steps = 10;
        qcfg.batch = 32;
        let quantized = vec![crate::qat::qat_quantized_demapper(&pipe, &qcfg)];
        let families = campaign_families(&pipe, SoftDemapperConfig::paper_default(), &quantized);
        assert_eq!(
            families.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(),
            vec![
                "conventional",
                "AE-inference",
                "hybrid-centroids",
                "fixed-point-accel",
                "ann-qat-w8",
                "exact-logmap",
                "snn-event",
            ]
        );

        let scenarios = paper_scenarios(4);
        assert_eq!(scenarios.len(), 4);

        // Micro-campaign across the full family line-up on one AWGN
        // point: every family must produce a valid artefact cell.
        let mut spec = CampaignSpec::new(
            families,
            paper_scenarios(4).into_iter().take(1).collect(),
            vec![6.0],
            5,
        );
        spec.stop = EarlyStop {
            target_bit_errors: 50,
            max_symbols_per_point: 4_096,
            first_round_symbols: 2_048,
            growth: 2,
        };
        spec.tasks = 4;
        let report = run_campaign(&spec);
        assert_eq!(report.points.len(), 7);
        report.validate().expect("campaign artefact invariants");
        // The conventional receiver at 6 dB Eb/N0 must be in a sane
        // BER range; the untrained ANN must be much worse.
        let conv = &report.points[0];
        let ann = &report.points[1];
        assert!(conv.ber < 0.1, "conventional BER {}", conv.ber);
        assert!(ann.ber > conv.ber, "untrained ANN can't beat max-log");
    }

    #[test]
    fn markdown_renders_rows() {
        let p = BerPoint {
            receiver: "x".into(),
            snr_db: 8.0,
            ber: 1e-2,
            ber_ci: (0.9e-2, 1.1e-2),
            ser: 3e-2,
            mi: 0.93,
            bits: 1000,
            bit_errors: 10,
        };
        let md = markdown_table(&[p]);
        assert!(md.contains("| x | 8 |"));
        assert_eq!(md.lines().count(), 3);
    }
}
