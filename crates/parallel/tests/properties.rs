//! Property-based tests of the parallel substrate: order preservation,
//! determinism, and exact work accounting.

use hybridem_mathkit::rng::Rng64;
use hybridem_parallel::montecarlo::{run, MonteCarloPlan};
use hybridem_parallel::par_iter::{par_chunks_map, par_map, par_map_indexed};
use hybridem_parallel::util::split_ranges;
use hybridem_parallel::StealPool;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

proptest! {
    #[test]
    fn par_map_equals_sequential(xs in proptest::collection::vec(any::<i32>(), 0..500)) {
        let seq: Vec<i64> = xs.iter().map(|&x| x as i64 * 3 - 7).collect();
        let par = par_map(&xs, |&x| x as i64 * 3 - 7);
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn par_map_indexed_order(n in 0usize..300) {
        let xs = vec![1u64; n];
        let out = par_map_indexed(&xs, |i, &x| i as u64 * 10 + x);
        for (i, v) in out.iter().enumerate() {
            prop_assert_eq!(*v, i as u64 * 10 + 1);
        }
    }

    #[test]
    fn chunks_cover_input(xs in proptest::collection::vec(any::<u8>(), 1..200), chunk in 1usize..40) {
        let lens = par_chunks_map(&xs, chunk, |_, c| c.len());
        prop_assert_eq!(lens.iter().sum::<usize>(), xs.len());
        // All full except possibly the last.
        for &l in &lens[..lens.len().saturating_sub(1)] {
            prop_assert_eq!(l, chunk);
        }
    }

    #[test]
    fn split_ranges_partition(len in 0usize..1000, pieces in 1usize..32) {
        let rs = split_ranges(len, pieces);
        let mut covered = 0usize;
        let mut next = 0usize;
        for r in &rs {
            prop_assert_eq!(r.start, next);
            covered += r.len();
            next = r.end;
        }
        prop_assert_eq!(covered, len);
    }

    #[test]
    fn montecarlo_result_independent_of_task_count(
        trials in 1u64..5000, tasks_a in 1u32..16, tasks_b in 1u32..16, seed in any::<u64>()
    ) {
        // Different task counts give different (but individually
        // reproducible) streams; the *same* plan must always replay.
        let go = |tasks: u32| {
            let plan = MonteCarloPlan::with_tasks(trials, tasks, seed);
            run(&plan, || 0u64, |acc, rng| {
                if rng.next_f64() < 0.25 {
                    *acc += 1;
                }
            }, |a, b| *a += b)
        };
        prop_assert_eq!(go(tasks_a), go(tasks_a));
        prop_assert_eq!(go(tasks_b), go(tasks_b));
        // And both estimates agree statistically (loose bound).
        let (a, b) = (go(tasks_a) as f64 / trials as f64, go(tasks_b) as f64 / trials as f64);
        prop_assert!((a - b).abs() < 0.25 + 3.0 / (trials as f64).sqrt());
    }

    #[test]
    fn montecarlo_trial_count_exact(trials in 0u64..10_000, tasks in 1u32..64, seed in any::<u64>()) {
        let plan = MonteCarloPlan::with_tasks(trials, tasks, seed);
        let counted = run(&plan, || 0u64, |acc, _| *acc += 1, |a, b| *a += b);
        prop_assert_eq!(counted, trials);
    }

    #[test]
    fn steal_pool_runs_every_task_exactly_once(
        threads in 1usize..6, tasks in 0usize..400, rounds in 1usize..4
    ) {
        // The pool makes no ordering promise, but exact-once execution
        // must hold for every (thread count, task count) combination
        // and must not degrade across reused rounds.
        let pool = StealPool::new(threads);
        for _ in 0..rounds {
            let hits: Vec<AtomicU32> = (0..tasks).map(|_| AtomicU32::new(0)).collect();
            pool.run(tasks, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for h in &hits {
                prop_assert_eq!(h.load(Ordering::Relaxed), 1);
            }
        }
    }
}
