//! Deterministic parallel Monte-Carlo execution.
//!
//! A BER point is an embarrassingly parallel estimation problem, but a
//! naive "one RNG per thread" split makes the result depend on the
//! machine's core count. Here the work is divided into a fixed number
//! of **tasks** chosen by the caller (not by the scheduler); task `i`
//! always processes the same number of trials with the RNG stream
//! `Xoshiro256pp::stream(seed, i)`, and partial results are reduced in
//! task order. The outcome is a pure function of `(plan, seed)`.

use crate::par_iter::par_map;
use hybridem_mathkit::rng::Xoshiro256pp;

/// Shape of a Monte-Carlo run: how many trials, split into how many
/// deterministic tasks.
#[derive(Clone, Copy, Debug)]
pub struct MonteCarloPlan {
    /// Total number of trials across all tasks.
    pub trials: u64,
    /// Number of independent tasks (each gets its own RNG stream).
    /// More tasks → finer load balancing; the result never changes.
    pub tasks: u32,
    /// Base seed; task `i` uses stream `(seed, i)`.
    pub seed: u64,
}

impl MonteCarloPlan {
    /// A plan with a task count suited to the current machine
    /// (4× threads for load balancing) but results independent of it —
    /// determinism only requires that *the same plan* be replayed.
    pub fn new(trials: u64, seed: u64) -> Self {
        let tasks = (crate::util::num_threads() * 4).clamp(1, 256) as u32;
        Self {
            trials,
            tasks,
            seed,
        }
    }

    /// Explicit task count (use in tests asserting thread-count
    /// invariance: fix `tasks`, vary `HYBRIDEM_THREADS`).
    pub fn with_tasks(trials: u64, tasks: u32, seed: u64) -> Self {
        assert!(tasks > 0, "at least one task");
        Self {
            trials,
            tasks,
            seed,
        }
    }

    /// Number of trials assigned to task `i` (first tasks get the
    /// remainder, same convention as `split_ranges`).
    pub fn trials_of_task(&self, i: u32) -> u64 {
        let base = self.trials / self.tasks as u64;
        let extra = self.trials % self.tasks as u64;
        base + u64::from((i as u64) < extra)
    }
}

/// Runs the plan: each task folds `body` over its trials into a fresh
/// accumulator from `init`, partial accumulators are combined with
/// `merge` in task order.
///
/// `body(acc, rng)` performs **one trial**.
pub fn run<A, I, B, M>(plan: &MonteCarloPlan, init: I, body: B, merge: M) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    B: Fn(&mut A, &mut Xoshiro256pp) + Sync,
    M: Fn(&mut A, A),
{
    let task_ids: Vec<u32> = (0..plan.tasks).collect();
    let partials = par_map(&task_ids, |&i| {
        let mut rng = Xoshiro256pp::stream(plan.seed, i as u64);
        let mut acc = init();
        for _ in 0..plan.trials_of_task(i) {
            body(&mut acc, &mut rng);
        }
        acc
    });
    let mut iter = partials.into_iter();
    let mut total = iter.next().unwrap_or_else(&init);
    for p in iter {
        merge(&mut total, p);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_mathkit::rng::Rng64;
    use hybridem_mathkit::stats::ErrorCounter;

    fn pi_estimate(plan: &MonteCarloPlan) -> f64 {
        let hits = run(
            plan,
            || 0u64,
            |acc, rng| {
                let x = rng.next_f64();
                let y = rng.next_f64();
                if x * x + y * y <= 1.0 {
                    *acc += 1;
                }
            },
            |a, b| *a += b,
        );
        4.0 * hits as f64 / plan.trials as f64
    }

    #[test]
    fn estimates_pi() {
        let plan = MonteCarloPlan::with_tasks(1_000_000, 16, 42);
        let pi = pi_estimate(&plan);
        assert!((pi - std::f64::consts::PI).abs() < 0.01, "pi ≈ {pi}");
    }

    #[test]
    fn deterministic_replay() {
        let plan = MonteCarloPlan::with_tasks(100_000, 8, 7);
        assert_eq!(pi_estimate(&plan).to_bits(), pi_estimate(&plan).to_bits());
    }

    #[test]
    fn independent_of_thread_count() {
        // Same plan evaluated with the scheduler forced to one thread
        // must agree bit-for-bit with the parallel run. We emulate the
        // one-thread case by folding tasks sequentially by hand.
        let plan = MonteCarloPlan::with_tasks(50_000, 12, 99);
        let parallel = pi_estimate(&plan);
        let mut hits = 0u64;
        for i in 0..plan.tasks {
            let mut rng = Xoshiro256pp::stream(plan.seed, i as u64);
            for _ in 0..plan.trials_of_task(i) {
                let x = rng.next_f64();
                let y = rng.next_f64();
                if x * x + y * y <= 1.0 {
                    hits += 1;
                }
            }
        }
        let sequential = 4.0 * hits as f64 / plan.trials as f64;
        assert_eq!(parallel.to_bits(), sequential.to_bits());
    }

    #[test]
    fn trial_split_is_exact() {
        for trials in [0u64, 1, 999, 1000, 1001] {
            let plan = MonteCarloPlan::with_tasks(trials, 7, 0);
            let sum: u64 = (0..plan.tasks).map(|i| plan.trials_of_task(i)).sum();
            assert_eq!(sum, trials);
        }
    }

    #[test]
    fn works_with_error_counter() {
        // Simulate a Bernoulli(0.1) error process.
        let plan = MonteCarloPlan::with_tasks(200_000, 16, 5);
        let counter = run(
            &plan,
            ErrorCounter::new,
            |acc, rng| acc.push(rng.next_f64() < 0.1),
            |a, b| a.merge(&b),
        );
        assert_eq!(counter.trials(), 200_000);
        assert!(counter.consistent_with(0.1, 3.9), "rate {}", counter.rate());
    }

    #[test]
    fn zero_trials_merge_only_inits() {
        // 4 tasks, 0 trials each: body never runs, the four init
        // accumulators (17 each) are summed by the merge.
        let plan = MonteCarloPlan::with_tasks(0, 4, 1);
        let v = run(&plan, || 17u32, |_, _| unreachable!(), |a, b| *a += b);
        assert_eq!(v, 68);
    }
}
