//! Deterministic parallel Monte-Carlo execution.
//!
//! A BER point is an embarrassingly parallel estimation problem, but a
//! naive "one RNG per thread" split makes the result depend on the
//! machine's core count. Here the work is divided into a fixed number
//! of **tasks** chosen by the caller (not by the scheduler); task `i`
//! always processes the same number of trials with the RNG stream
//! `Xoshiro256pp::stream(seed, i)`, and partial results are reduced in
//! task order. The outcome is a pure function of `(plan, seed)`.
//!
//! Two execution modes share that machinery:
//!
//! - [`run`] — one-shot: all trials in a single pass;
//! - [`RoundRunner`] — resumable: trials arrive in caller-chosen
//!   **rounds**, each task keeping its accumulator and RNG stream
//!   alive between rounds. The state after rounds `r₁, …, r_k` is a
//!   pure function of `(tasks, seed, r₁ … r_k)` — independent of
//!   thread count and of whether later rounds ever run — which is what
//!   makes statistical early stopping deterministic: a caller that
//!   stops after round `k` obtains exactly the `k`-round prefix of the
//!   uncapped run (DESIGN.md §8). (Collapsing rounds into one bigger
//!   round additionally preserves results whenever the per-task trial
//!   splits line up, e.g. round sizes divisible by the task count.)

use crate::par_iter::par_for_each_mut;
use hybridem_mathkit::rng::Xoshiro256pp;

/// Shape of a Monte-Carlo run: how many trials, split into how many
/// deterministic tasks.
#[derive(Clone, Copy, Debug)]
pub struct MonteCarloPlan {
    /// Total number of trials across all tasks.
    pub trials: u64,
    /// Number of independent tasks (each gets its own RNG stream).
    /// More tasks → finer load balancing; the result never changes.
    pub tasks: u32,
    /// Base seed; task `i` uses stream `(seed, i)`.
    pub seed: u64,
}

impl MonteCarloPlan {
    /// A plan with a task count suited to the current machine
    /// (4× threads for load balancing) but results independent of it —
    /// determinism only requires that *the same plan* be replayed.
    pub fn new(trials: u64, seed: u64) -> Self {
        let tasks = (crate::util::num_threads() * 4).clamp(1, 256) as u32;
        Self {
            trials,
            tasks,
            seed,
        }
    }

    /// Explicit task count (use in tests asserting thread-count
    /// invariance: fix `tasks`, vary `HYBRIDEM_THREADS`).
    pub fn with_tasks(trials: u64, tasks: u32, seed: u64) -> Self {
        assert!(tasks > 0, "at least one task");
        Self {
            trials,
            tasks,
            seed,
        }
    }

    /// Number of trials assigned to task `i` (first tasks get the
    /// remainder, same convention as `split_ranges`).
    pub fn trials_of_task(&self, i: u32) -> u64 {
        let base = self.trials / self.tasks as u64;
        let extra = self.trials % self.tasks as u64;
        base + u64::from((i as u64) < extra)
    }
}

/// Runs the plan: each task folds `body` over its trials into a fresh
/// accumulator from `init`, partial accumulators are combined with
/// `merge` in task order.
///
/// `body(acc, rng)` performs **one trial**. Implemented as a
/// [`RoundRunner`] executing a single round, so one-shot and
/// incremental execution can never drift apart.
pub fn run<A, I, B, M>(plan: &MonteCarloPlan, init: I, body: B, merge: M) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    B: Fn(&mut A, &mut Xoshiro256pp) + Sync,
    M: Fn(&mut A, A),
{
    if plan.tasks == 0 {
        return init();
    }
    let mut runner = RoundRunner::new(plan.tasks, plan.seed, init);
    runner.run_round(plan.trials, body);
    runner.into_merged(merge)
}

struct TaskState<A> {
    rng: Xoshiro256pp,
    acc: A,
}

/// Resumable deterministic Monte-Carlo execution in rounds.
///
/// Holds one `(accumulator, RNG stream)` pair per task. Every call to
/// [`RoundRunner::run_round`] splits the round's trials across the
/// fixed task set (same remainder-first convention as
/// [`MonteCarloPlan::trials_of_task`]) and lets each task continue its
/// own stream where the previous round left it. Because task state
/// never migrates between tasks, the accumulated result after any
/// round prefix is a pure function of
/// `(tasks, seed, round sizes so far)` — independent of thread count
/// and of whether later rounds ever run. Stop decisions taken between
/// rounds therefore cannot perturb the estimate they stopped.
pub struct RoundRunner<A> {
    seed: u64,
    states: Vec<TaskState<A>>,
    rounds: u32,
    trials: u64,
}

impl<A: Send> RoundRunner<A> {
    /// Creates `tasks` resumable task states for the given seed; task
    /// `i` draws from `Xoshiro256pp::stream(seed, i)` for its lifetime.
    ///
    /// # Panics
    /// Panics if `tasks == 0`.
    pub fn new<I: Fn() -> A>(tasks: u32, seed: u64, init: I) -> Self {
        assert!(tasks > 0, "at least one task");
        let states = (0..tasks)
            .map(|i| TaskState {
                rng: Xoshiro256pp::stream(seed, u64::from(i)),
                acc: init(),
            })
            .collect();
        Self {
            seed,
            states,
            rounds: 0,
            trials: 0,
        }
    }

    /// Number of tasks (fixed at construction).
    pub fn tasks(&self) -> u32 {
        self.states.len() as u32
    }

    /// Base seed the task streams were derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Total trials executed across all rounds.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Executes one round of `trials` further trials, split across the
    /// task set with the [`MonteCarloPlan::trials_of_task`] convention
    /// (first `trials % tasks` tasks get one extra).
    pub fn run_round<B>(&mut self, trials: u64, body: B)
    where
        B: Fn(&mut A, &mut Xoshiro256pp) + Sync,
    {
        let tasks = self.states.len() as u64;
        let base = trials / tasks;
        let extra = trials % tasks;
        par_for_each_mut(&mut self.states, |i, state| {
            let n = base + u64::from((i as u64) < extra);
            for _ in 0..n {
                body(&mut state.acc, &mut state.rng);
            }
        });
        self.rounds += 1;
        self.trials += trials;
    }

    /// Reduces a snapshot of the task accumulators in task order:
    /// `map` projects each accumulator, `merge` folds projections into
    /// the first one. Task-order folding keeps floating-point
    /// reductions bit-stable across thread counts.
    pub fn fold<R, P, M>(&self, map: P, merge: M) -> R
    where
        P: Fn(&A) -> R,
        M: Fn(&mut R, R),
    {
        let mut iter = self.states.iter();
        let first = iter.next().expect("RoundRunner has at least one task");
        let mut total = map(&first.acc);
        for s in iter {
            merge(&mut total, map(&s.acc));
        }
        total
    }

    /// Consumes the runner, merging the task accumulators by value in
    /// task order (the reduction used by [`run`]).
    pub fn into_merged<M: Fn(&mut A, A)>(self, merge: M) -> A {
        let mut iter = self.states.into_iter();
        let mut total = iter.next().expect("RoundRunner has at least one task").acc;
        for s in iter {
            merge(&mut total, s.acc);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_mathkit::rng::Rng64;
    use hybridem_mathkit::stats::ErrorCounter;

    fn pi_estimate(plan: &MonteCarloPlan) -> f64 {
        let hits = run(
            plan,
            || 0u64,
            |acc, rng| {
                let x = rng.next_f64();
                let y = rng.next_f64();
                if x * x + y * y <= 1.0 {
                    *acc += 1;
                }
            },
            |a, b| *a += b,
        );
        4.0 * hits as f64 / plan.trials as f64
    }

    #[test]
    fn estimates_pi() {
        let plan = MonteCarloPlan::with_tasks(1_000_000, 16, 42);
        let pi = pi_estimate(&plan);
        assert!((pi - std::f64::consts::PI).abs() < 0.01, "pi ≈ {pi}");
    }

    #[test]
    fn deterministic_replay() {
        let plan = MonteCarloPlan::with_tasks(100_000, 8, 7);
        assert_eq!(pi_estimate(&plan).to_bits(), pi_estimate(&plan).to_bits());
    }

    #[test]
    fn independent_of_thread_count() {
        // Same plan evaluated with the scheduler forced to one thread
        // must agree bit-for-bit with the parallel run. We emulate the
        // one-thread case by folding tasks sequentially by hand.
        let plan = MonteCarloPlan::with_tasks(50_000, 12, 99);
        let parallel = pi_estimate(&plan);
        let mut hits = 0u64;
        for i in 0..plan.tasks {
            let mut rng = Xoshiro256pp::stream(plan.seed, i as u64);
            for _ in 0..plan.trials_of_task(i) {
                let x = rng.next_f64();
                let y = rng.next_f64();
                if x * x + y * y <= 1.0 {
                    hits += 1;
                }
            }
        }
        let sequential = 4.0 * hits as f64 / plan.trials as f64;
        assert_eq!(parallel.to_bits(), sequential.to_bits());
    }

    #[test]
    fn trial_split_is_exact() {
        for trials in [0u64, 1, 999, 1000, 1001] {
            let plan = MonteCarloPlan::with_tasks(trials, 7, 0);
            let sum: u64 = (0..plan.tasks).map(|i| plan.trials_of_task(i)).sum();
            assert_eq!(sum, trials);
        }
    }

    #[test]
    fn works_with_error_counter() {
        // Simulate a Bernoulli(0.1) error process.
        let plan = MonteCarloPlan::with_tasks(200_000, 16, 5);
        let counter = run(
            &plan,
            ErrorCounter::new,
            |acc, rng| acc.push(rng.next_f64() < 0.1),
            |a, b| a.merge(&b),
        );
        assert_eq!(counter.trials(), 200_000);
        assert!(counter.consistent_with(0.1, 3.9), "rate {}", counter.rate());
    }

    #[test]
    fn rounds_are_a_prefix_of_the_uncapped_run() {
        // Three geometric rounds must equal one round of the summed
        // trial count, and stopping after round two must equal the
        // two-round prefix of the three-round run — the early-stopping
        // determinism argument in miniature.
        let hits = |rounds: &[u64]| {
            let mut r = RoundRunner::new(8, 33, || 0u64);
            for &t in rounds {
                r.run_round(t, |acc, rng| {
                    let x = rng.next_f64();
                    let y = rng.next_f64();
                    if x * x + y * y <= 1.0 {
                        *acc += 1;
                    }
                });
            }
            r.fold(|a| *a, |a, b| *a += b)
        };
        assert_eq!(hits(&[1000, 4000, 16000]), hits(&[21000]));
        assert_eq!(hits(&[1000, 4000]), hits(&[5000]));
    }

    #[test]
    fn round_runner_matches_run() {
        let plan = MonteCarloPlan::with_tasks(40_000, 16, 5);
        let via_run = run(
            &plan,
            ErrorCounter::new,
            |acc, rng| acc.push(rng.next_f64() < 0.25),
            |a, b| a.merge(&b),
        );
        let mut runner = RoundRunner::new(plan.tasks, plan.seed, ErrorCounter::new);
        runner.run_round(plan.trials, |acc, rng| acc.push(rng.next_f64() < 0.25));
        let via_rounds = runner.fold(|c| *c, |a, b| a.merge(&b));
        assert_eq!(via_run.errors(), via_rounds.errors());
        assert_eq!(via_run.trials(), via_rounds.trials());
        assert_eq!(runner.rounds(), 1);
        assert_eq!(runner.trials(), 40_000);
        assert_eq!(runner.tasks(), 16);
        assert_eq!(runner.seed(), 5);
    }

    #[test]
    fn round_split_uses_plan_convention() {
        // 10 trials over 4 tasks: tasks 0,1 run 3 trials, tasks 2,3
        // run 2 — the trials_of_task convention, observable by counting
        // per-task bodies.
        let mut r = RoundRunner::new(4, 0, Vec::<u64>::new);
        r.run_round(10, |acc, _| acc.push(1));
        let per_task = r.fold(|a| vec![a.len() as u64], |a, b| a.extend(b));
        assert_eq!(per_task, vec![3, 3, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_rejected() {
        let _ = RoundRunner::new(0, 0, || 0u8);
    }

    #[test]
    fn zero_trials_merge_only_inits() {
        // 4 tasks, 0 trials each: body never runs, the four init
        // accumulators (17 each) are summed by the merge.
        let plan = MonteCarloPlan::with_tasks(0, 4, 1);
        let v = run(&plan, || 17u32, |_, _| unreachable!(), |a, b| *a += b);
        assert_eq!(v, 68);
    }
}
