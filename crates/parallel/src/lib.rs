//! # hybridem-parallel
//!
//! Thread-based data parallelism for the Monte-Carlo workloads in the
//! workspace (BER sweeps need 10⁶–10⁷ simulated symbols per point).
//!
//! Built directly on `std::thread::scope` in the spirit of the
//! Rayon model (fork–join over slices), but deliberately tiny and —
//! crucially — **deterministic**: work is split into a fixed number of
//! *tasks* that is independent of the worker count, and each task draws
//! from its own counter-derived RNG stream. Running on 1 thread or 64
//! produces bit-identical results.
//!
//! - [`par_map`] / [`par_map_indexed`] — parallel map over a slice;
//! - [`par_chunks_map`] — parallel map over contiguous chunks;
//! - [`par_for_each_mut`] — parallel in-place mutation of independent
//!   element states;
//! - [`montecarlo::run`] — deterministic parallel Monte-Carlo with
//!   per-task RNG streams and associative reduction;
//! - [`montecarlo::RoundRunner`] — the resumable round-based variant
//!   behind the campaign engine's statistical early stopping
//!   (DESIGN.md §8);
//! - [`shard::ShardRunner`] — fully independent stateful shards (one
//!   online link per shard) stepped in parallel and folded in shard
//!   order (DESIGN.md §10);
//! - [`steal::StealPool`] — persistent work-stealing workers for
//!   latency-imbalanced serving rounds, where static partitioning
//!   would let one hot task starve its whole range (DESIGN.md §12).
//!   Deliberately **non**-deterministic in schedule; consumers fold
//!   results in task order to stay reproducible.

#![warn(missing_docs)]

pub mod montecarlo;
pub mod par_iter;
pub mod shard;
pub mod steal;
pub mod util;

pub use montecarlo::{run as montecarlo_run, MonteCarloPlan, RoundRunner};
pub use par_iter::{par_chunks_map, par_for_each_mut, par_map, par_map_indexed};
pub use shard::ShardRunner;
pub use steal::StealPool;
pub use util::num_threads;
