//! Worker-count and chunking heuristics.

use std::num::NonZeroUsize;

/// Number of worker threads to use: the available parallelism, capped
/// by the `HYBRIDEM_THREADS` environment variable when set (useful for
/// benchmarking scaling behaviour and for CI determinism checks).
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("HYBRIDEM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `len` items into at most `pieces` contiguous ranges of nearly
/// equal size (the first `len % pieces` ranges get one extra item).
/// Returns an empty vector for `len == 0`.
pub fn split_ranges(len: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 || pieces == 0 {
        return Vec::new();
    }
    let pieces = pieces.min(len);
    let base = len / pieces;
    let extra = len % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let sz = base + usize::from(i < extra);
        out.push(start..start + sz);
        start += sz;
    }
    debug_assert_eq!(start, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_thread() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn split_covers_everything_in_order() {
        for len in [0usize, 1, 7, 100, 101] {
            for pieces in [1usize, 2, 3, 8, 200] {
                let rs = split_ranges(len, pieces);
                let mut next = 0;
                for r in &rs {
                    assert_eq!(r.start, next, "gapless");
                    assert!(!r.is_empty(), "no empty ranges");
                    next = r.end;
                }
                assert_eq!(next, len, "covers len={len} pieces={pieces}");
                if len > 0 {
                    assert!(rs.len() <= pieces);
                    let max = rs.iter().map(|r| r.len()).max().unwrap();
                    let min = rs.iter().map(|r| r.len()).min().unwrap();
                    assert!(max - min <= 1, "balanced");
                }
            }
        }
    }
}
