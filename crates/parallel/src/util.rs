//! Worker-count and chunking heuristics.
//!
//! All thread-count policy lives here: every crate and bench binary
//! that honours the `HYBRIDEM_THREADS` override goes through
//! [`num_threads`] / [`thread_override`], so the fallback rules for
//! unset, zero and garbage values are defined (and tested) exactly
//! once.

use std::num::NonZeroUsize;

/// Environment variable capping the worker count workspace-wide.
pub const THREADS_ENV: &str = "HYBRIDEM_THREADS";

/// Parses a thread-count override value with the workspace's strict
/// shared rule ([`hybridem_mathkit::env::parse_count`]): `Some(n)`
/// only for a plain all-digit string ≥ 1. An unset variable, an empty
/// string, `0`, whitespace, a signed form like `"+8"`, or garbage all
/// fall back to the host default — the same strings are rejected by
/// `HYBRIDEM_LANES` and the bench budget vars, so one value means one
/// thing workspace-wide. This is the single parsing rule behind
/// [`num_threads`]; bench binaries that sweep explicit worker counts
/// use it directly so their fallback behaviour matches the library's.
pub fn thread_override(value: Option<&str>) -> Option<usize> {
    hybridem_mathkit::env::parse_count_opt(value)
}

/// Number of worker threads to use: the available parallelism, capped
/// by the `HYBRIDEM_THREADS` environment variable when set to a valid
/// count (useful for benchmarking scaling behaviour and for CI
/// determinism checks). Invalid values (`0`, empty, non-numeric) are
/// ignored rather than honoured or fatal: a misconfigured environment
/// degrades to the host default instead of serialising or crashing a
/// campaign.
pub fn num_threads() -> usize {
    thread_override(std::env::var(THREADS_ENV).ok().as_deref()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Splits `len` items into at most `pieces` contiguous ranges of nearly
/// equal size (the first `len % pieces` ranges get one extra item).
/// Returns an empty vector for `len == 0`.
pub fn split_ranges(len: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 || pieces == 0 {
        return Vec::new();
    }
    let pieces = pieces.min(len);
    let base = len / pieces;
    let extra = len % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for i in 0..pieces {
        let sz = base + usize::from(i < extra);
        out.push(start..start + sz);
        start += sz;
    }
    debug_assert_eq!(start, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_one_thread() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn override_accepts_valid_counts() {
        assert_eq!(thread_override(Some("1")), Some(1));
        assert_eq!(thread_override(Some("8")), Some(8));
        assert_eq!(thread_override(Some("32")), Some(32));
    }

    #[test]
    fn override_falls_back_for_unset_zero_and_garbage() {
        assert_eq!(thread_override(None), None, "unset");
        assert_eq!(thread_override(Some("0")), None, "zero would deadlock");
        assert_eq!(thread_override(Some("")), None, "empty");
        assert_eq!(thread_override(Some("many")), None, "non-numeric");
        assert_eq!(thread_override(Some("-2")), None, "negative");
        assert_eq!(thread_override(Some("3.5")), None, "fractional");
    }

    #[test]
    fn override_rejects_signed_and_padded_forms() {
        // The strict shared parser (mathkit::env) rejects everything
        // `str::parse` would have quietly accepted.
        assert_eq!(thread_override(Some("+8")), None, "leading plus");
        assert_eq!(thread_override(Some(" 4 ")), None, "whitespace-padded");
        assert_eq!(thread_override(Some("4 ")), None, "trailing space");
        assert_eq!(thread_override(Some("\t2")), None, "tab-padded");
        assert_eq!(thread_override(Some("00")), None, "zero in disguise");
        assert_eq!(thread_override(Some("007")), Some(7), "digits only: ok");
    }

    #[test]
    fn split_covers_everything_in_order() {
        for len in [0usize, 1, 7, 100, 101] {
            for pieces in [1usize, 2, 3, 8, 200] {
                let rs = split_ranges(len, pieces);
                let mut next = 0;
                for r in &rs {
                    assert_eq!(r.start, next, "gapless");
                    assert!(!r.is_empty(), "no empty ranges");
                    next = r.end;
                }
                assert_eq!(next, len, "covers len={len} pieces={pieces}");
                if len > 0 {
                    assert!(rs.len() <= pieces);
                    let max = rs.iter().map(|r| r.len()).max().unwrap();
                    let min = rs.iter().map(|r| r.len()).min().unwrap();
                    assert!(max - min <= 1, "balanced");
                }
            }
        }
    }
}
