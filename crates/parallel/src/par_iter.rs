//! Parallel map primitives over slices.
//!
//! These are fork–join helpers in the Rayon style, specialised to the
//! access patterns of the workspace (read-only input slice, owned output
//! per element). Results are always assembled in input order, so the
//! output is identical to the sequential map regardless of scheduling.

use crate::util::{num_threads, split_ranges};

/// Parallel equivalent of `items.iter().map(f).collect()`.
///
/// Falls back to the sequential map for small inputs where spawning
/// costs more than the work.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, |_, item| f(item))
}

/// Parallel map that also passes the element index.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = num_threads();
    if items.is_empty() {
        return Vec::new();
    }
    if threads == 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let ranges = split_ranges(items.len(), threads);
    let pieces: Vec<Vec<R>> = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .cloned()
            .map(|r| {
                let f = &f;
                s.spawn(move || {
                    items[r.clone()]
                        .iter()
                        .enumerate()
                        .map(|(k, t)| f(r.start + k, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for p in pieces {
        out.extend(p);
    }
    out
}

/// Parallel in-place mutation: runs `f(index, &mut items[index])` for
/// every element, partitioned contiguously across worker threads.
///
/// This is the primitive behind resumable Monte-Carlo rounds
/// ([`crate::montecarlo::RoundRunner`]): each element owns independent
/// state (accumulator + RNG stream), so the result is identical to the
/// sequential loop regardless of how elements land on threads.
pub fn par_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = num_threads();
    if items.is_empty() {
        return;
    }
    if threads == 1 || items.len() < 2 {
        for (i, t) in items.iter_mut().enumerate() {
            f(i, t);
        }
        return;
    }
    let ranges = split_ranges(items.len(), threads);
    std::thread::scope(|s| {
        let mut rest = items;
        let mut offset = 0;
        let mut handles = Vec::with_capacity(ranges.len());
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            rest = tail;
            let start = offset;
            offset += r.len();
            let f = &f;
            handles.push(s.spawn(move || {
                for (k, t) in head.iter_mut().enumerate() {
                    f(start + k, t);
                }
            }));
        }
        for h in handles {
            h.join().expect("parallel worker panicked");
        }
    });
}

/// Parallel map over contiguous chunks of at most `chunk` elements;
/// `f` receives `(chunk_index, chunk_slice)`. Chunk outputs are returned
/// in order.
pub fn par_chunks_map<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let chunks: Vec<&[T]> = items.chunks(chunk).collect();
    par_map_indexed(&chunks, |i, c| f(i, c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn matches_sequential_map() {
        let xs: Vec<i64> = (0..10_000).collect();
        let seq: Vec<i64> = xs.iter().map(|x| x * x - 3).collect();
        let par = par_map(&xs, |x| x * x - 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn indexed_variant_sees_correct_indices() {
        let xs = vec![10u64; 1000];
        let par = par_map_indexed(&xs, |i, &x| i as u64 + x);
        for (i, v) in par.iter().enumerate() {
            assert_eq!(*v, i as u64 + 10);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&empty, |x| *x).is_empty());
        assert_eq!(par_map(&[42], |x| x + 1), vec![43]);
    }

    #[test]
    fn all_elements_visited_exactly_once() {
        let xs: Vec<usize> = (0..5000).collect();
        let counter = AtomicUsize::new(0);
        let out = par_map(&xs, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(counter.load(Ordering::Relaxed), xs.len());
        assert_eq!(out, xs);
    }

    #[test]
    fn for_each_mut_matches_sequential() {
        let mut par: Vec<u64> = (0..5000).collect();
        let mut seq = par.clone();
        par_for_each_mut(&mut par, |i, x| *x = *x * 3 + i as u64);
        for (i, x) in seq.iter_mut().enumerate() {
            *x = *x * 3 + i as u64;
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn for_each_mut_empty_and_singleton() {
        let mut empty: Vec<u8> = Vec::new();
        par_for_each_mut(&mut empty, |_, _| unreachable!());
        let mut one = vec![7u32];
        par_for_each_mut(&mut one, |i, x| *x += i as u32 + 1);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn chunks_map_order_and_sizes() {
        let xs: Vec<u32> = (0..10).collect();
        let sums = par_chunks_map(&xs, 4, |i, c| (i, c.iter().sum::<u32>()));
        assert_eq!(sums, vec![(0, 1 + 2 + 3), (1, 4 + 5 + 6 + 7), (2, 8 + 9)]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        let _ = par_chunks_map(&[1, 2, 3], 0, |_, c| c.len());
    }
}
