//! Work-stealing task pool for latency-imbalanced workloads.
//!
//! The fork–join helpers in [`crate::par_iter`] and the stateful
//! [`crate::shard::ShardRunner`] both **static-partition**: element
//! ranges are fixed before any work runs, which is what makes their
//! results a pure function of the input (DESIGN.md §10) — and what
//! lets one slow element starve its whole partition while other
//! workers sit idle. [`StealPool`] is the complement for workloads
//! where *who* runs a task must not matter but *when* it finishes
//! does: each participant owns a deque seeded with a contiguous range
//! of task indices, pops its own work from the front, and — when its
//! deque runs dry — steals from the back of a victim's deque. Hot
//! tasks therefore spread across workers instead of pinning their
//! partition (DESIGN.md §12.1).
//!
//! Scheduling is **not** deterministic: tasks run exactly once each,
//! but on arbitrary workers in arbitrary order. Callers that need
//! bit-stable results must keep per-task state independent and fold in
//! task order afterwards — the same discipline
//! [`ShardRunner::fold`](crate::shard::ShardRunner::fold) already
//! enforces for campaigns.
//!
//! Workers are **persistent**: `new` spawns them once, every
//! [`StealPool::run`] round reuses them, and a warm round performs no
//! heap allocation (deques refill within capacity, the job handle is a
//! type-erased pointer) — the pool sits on the link server's
//! steady-state hot path, which is allocation-free by contract.

use crate::util::num_threads;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// The job of one round: a borrowed task body with its lifetime erased.
/// Safety: [`StealPool::run`] blocks until every worker has finished
/// the round before returning, so the pointee outlives every use.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are
// fine) and `run` keeps it alive for the whole round.
unsafe impl Send for Job {}

struct Coord {
    /// Round counter; bumped once per `run` that engages the workers.
    epoch: u64,
    /// The current round's body (present only while a round is live).
    job: Option<Job>,
    /// Background workers still inside the current round.
    running: usize,
    /// A task panicked on a background worker this round.
    panicked: bool,
    shutdown: bool,
}

struct Shared {
    /// One task deque per participant; index 0 belongs to the caller.
    deques: Vec<Mutex<VecDeque<usize>>>,
    coord: Mutex<Coord>,
    /// Wakes background workers for a new round (or shutdown).
    work: Condvar,
    /// Wakes the caller when the last background worker finishes.
    done: Condvar,
    /// Successful steals, cumulative (observability + tests).
    steals: AtomicU64,
}

/// A fixed set of persistent workers executing rounds of indexed tasks
/// with deque-based work stealing. See the module docs for semantics.
pub struct StealPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl StealPool {
    /// Pool with `threads` participants **including the caller**:
    /// `threads − 1` background workers are spawned. `threads == 1`
    /// spawns nothing and [`StealPool::run`] degenerates to the
    /// sequential loop `for i in 0..tasks { f(i) }`.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a pool needs at least the calling thread");
        let shared = Arc::new(Shared {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            coord: Mutex::new(Coord {
                epoch: 0,
                job: None,
                running: 0,
                panicked: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            steals: AtomicU64::new(0),
        });
        let workers = (1..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || Self::worker_loop(&shared, me))
            })
            .collect();
        Self { shared, workers }
    }

    /// Pool sized by [`num_threads`] (`HYBRIDEM_THREADS`-capped host
    /// parallelism).
    pub fn with_default_threads() -> Self {
        Self::new(num_threads())
    }

    /// Participants, including the calling thread.
    pub fn threads(&self) -> usize {
        self.shared.deques.len()
    }

    /// Tasks executed via a steal (cumulative across rounds). Zero on
    /// a single-thread pool and on perfectly balanced rounds.
    pub fn steal_count(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Runs `f(i)` for every `i in 0..tasks`, each exactly once,
    /// distributed over the pool by work stealing, and returns when
    /// all are done. Tasks must not submit new tasks to this pool
    /// (the pool would deadlock waiting on itself).
    ///
    /// # Panics
    /// Panics if any task panicked (after the round has drained).
    pub fn run<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        self.run_dyn(tasks, &f);
    }

    fn run_dyn(&self, tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        let participants = self.shared.deques.len();
        if participants == 1 {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        // Seed each participant's deque with a contiguous,
        // cache-friendly range (same split as `util::split_ranges`,
        // computed inline: a warm round must not allocate, and this
        // runs inside the link server's no-alloc steady state). The
        // ranges only balance the *start*; stealing balances the
        // finish.
        let pieces = participants.min(tasks);
        let (base, extra) = (tasks / pieces, tasks % pieces);
        let mut start = 0usize;
        for (pi, d) in self.shared.deques.iter().enumerate() {
            let mut q = d.lock().unwrap();
            debug_assert!(q.is_empty(), "previous round drained every deque");
            if pi < pieces {
                let sz = base + usize::from(pi < extra);
                q.extend(start..start + sz);
                start += sz;
            }
        }
        debug_assert_eq!(start, tasks, "the seeded ranges cover every task");

        // SAFETY: `run_dyn` does not return until `running == 0`, so
        // the erased borrow outlives every worker's use of it.
        let job = Job(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        });
        {
            let mut c = self.shared.coord.lock().unwrap();
            c.job = Some(job);
            c.epoch += 1;
            c.running = participants - 1;
            self.shared.work.notify_all();
        }

        // The caller is participant 0 and works the round too; a task
        // panic on this thread unwinds through `run` directly (the
        // wait below must still drain the workers first).
        let caller_result = catch_unwind(AssertUnwindSafe(|| Self::work(&self.shared, 0, f)));

        let mut c = self.shared.coord.lock().unwrap();
        while c.running > 0 {
            c = self.shared.done.wait(c).unwrap();
        }
        c.job = None;
        let worker_panicked = std::mem::take(&mut c.panicked);
        drop(c);
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
        assert!(!worker_panicked, "StealPool task panicked on a worker");
    }

    /// One participant's share of a round: drain the own deque from
    /// the front, then steal from the back of the next non-empty
    /// victim; return when a full scan finds nothing. Tasks never
    /// enqueue new tasks, so an all-empty scan is a stable exit.
    fn work(shared: &Shared, me: usize, f: &(dyn Fn(usize) + Sync)) {
        let n = shared.deques.len();
        loop {
            let mine = shared.deques[me].lock().unwrap().pop_front();
            if let Some(t) = mine {
                f(t);
                continue;
            }
            let mut stolen = None;
            for k in 1..n {
                let victim = (me + k) % n;
                if let Some(t) = shared.deques[victim].lock().unwrap().pop_back() {
                    stolen = Some(t);
                    break;
                }
            }
            match stolen {
                Some(t) => {
                    shared.steals.fetch_add(1, Ordering::Relaxed);
                    f(t);
                }
                None => return,
            }
        }
    }

    fn worker_loop(shared: &Shared, me: usize) {
        let mut seen_epoch = 0u64;
        loop {
            let job = {
                let mut c = shared.coord.lock().unwrap();
                loop {
                    if c.shutdown {
                        return;
                    }
                    if c.epoch > seen_epoch {
                        if let Some(job) = c.job {
                            seen_epoch = c.epoch;
                            break job;
                        }
                    }
                    c = shared.work.wait(c).unwrap();
                }
            };
            // SAFETY: the caller blocks in `run_dyn` until this worker
            // decrements `running`, so the job pointee is still alive.
            let f = unsafe { &*job.0 };
            let result = catch_unwind(AssertUnwindSafe(|| Self::work(shared, me, f)));
            let mut c = shared.coord.lock().unwrap();
            if result.is_err() {
                c.panicked = true;
                // A panicking task aborts only its own participant;
                // drain what the panicked worker left behind so the
                // round still completes every remaining task.
            }
            c.running -= 1;
            if c.running == 0 {
                shared.done.notify_one();
            }
        }
    }
}

impl Drop for StealPool {
    fn drop(&mut self) {
        {
            let mut c = self.shared.coord.lock().unwrap();
            c.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, AtomicUsize};

    #[test]
    fn every_task_runs_exactly_once() {
        for threads in [1usize, 2, 3, 8] {
            let pool = StealPool::new(threads);
            for tasks in [0usize, 1, 7, 64, 257] {
                let hits: Vec<AtomicU32> = (0..tasks).map(|_| AtomicU32::new(0)).collect();
                pool.run(tasks, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(
                        h.load(Ordering::Relaxed),
                        1,
                        "task {i} at {threads} threads/{tasks} tasks"
                    );
                }
            }
        }
    }

    #[test]
    fn rounds_reuse_the_same_workers() {
        let pool = StealPool::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(32, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * 32);
    }

    #[test]
    fn imbalanced_rounds_are_rebalanced_by_stealing() {
        // All the slow tasks land in the caller's seeded range; the
        // idle background workers must steal them. The pool can't
        // guarantee *which* tasks are stolen, but with 3 starving
        // workers and 16 × 1 ms of work in deque 0, zero steals would
        // mean stealing is broken.
        let pool = StealPool::new(4);
        pool.run(64, |i| {
            if i < 16 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        assert!(
            pool.steal_count() > 0,
            "idle workers must steal from the loaded deque"
        );
    }

    #[test]
    fn single_thread_pool_runs_inline_in_order() {
        let pool = StealPool::new(1);
        let order = Mutex::new(Vec::new());
        pool.run(5, |i| order.lock().unwrap().push(i));
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(pool.steal_count(), 0);
    }

    #[test]
    fn pool_survives_a_panicking_round() {
        let pool = StealPool::new(3);
        let done = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(32, |i| {
                if i == 7 {
                    panic!("boom");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(r.is_err(), "the panic must propagate to the caller");
        // The pool is still usable afterwards: deques drained, workers
        // alive.
        let total = AtomicUsize::new(0);
        pool.run(16, |_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    #[should_panic(expected = "at least the calling thread")]
    fn zero_threads_rejected() {
        let _ = StealPool::new(0);
    }
}
