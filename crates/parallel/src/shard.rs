//! Deterministic sharding of fully independent stateful simulations.
//!
//! [`crate::montecarlo::RoundRunner`] owns the RNG streams and hands
//! tasks an accumulator; that fits trial-counting estimators, but a
//! *time-series* simulation (e.g. one online link streaming frames
//! through a drifting channel) owns its whole world — RNG, channel
//! state, adaptation state, event log. [`ShardRunner`] is the
//! complement: the caller builds one self-contained shard per index,
//! the runner steps all shards in parallel, and reductions fold in
//! **shard order** so any floating-point combination is bit-stable
//! across thread counts. The result of a run is a pure function of the
//! per-shard constructor — never of the worker count (DESIGN.md §10).

use crate::par_iter::par_for_each_mut;

/// A fixed set of independent stateful shards stepped in parallel.
pub struct ShardRunner<S> {
    shards: Vec<S>,
    rounds: u32,
}

impl<S: Send> ShardRunner<S> {
    /// Builds `count` shards; shard `i` is `init(i)`. Construction is
    /// sequential (shard constructors are usually cheap clones of a
    /// shared template; keep heavy setup outside).
    ///
    /// # Panics
    /// Panics if `count == 0`.
    pub fn new<I: FnMut(u32) -> S>(count: u32, mut init: I) -> Self {
        assert!(count > 0, "at least one shard");
        Self {
            shards: (0..count).map(&mut init).collect(),
            rounds: 0,
        }
    }

    /// Number of shards (fixed at construction).
    pub fn shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Runs `body(index, shard)` once per shard, in parallel.
    ///
    /// # Determinism contract
    ///
    /// This runner **static-partitions**: shard `i` is always stepped
    /// against its own state and nothing else, `body` runs exactly once
    /// per shard per round, and every reduction ([`ShardRunner::fold`])
    /// visits shards in index order. Together these make a campaign's
    /// output a pure function of the shard constructors — bit-identical
    /// at any `HYBRIDEM_THREADS`. The price is load balance: a slow
    /// shard stalls its partition. Serving workloads that need
    /// rebalancing use [`crate::steal::StealPool`] instead, which
    /// trades the schedule guarantee away — the two must not be
    /// confused, so the contract is asserted here rather than assumed.
    pub fn run_round<B>(&mut self, body: B)
    where
        B: Fn(u32, &mut S) + Sync,
    {
        let visits = std::sync::atomic::AtomicUsize::new(0);
        par_for_each_mut(&mut self.shards, |i, s| {
            visits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            body(i as u32, s);
        });
        assert_eq!(
            visits.load(std::sync::atomic::Ordering::Relaxed),
            self.shards.len(),
            "determinism contract: body runs exactly once per shard"
        );
        self.rounds += 1;
    }

    /// Reduces a snapshot of the shards in shard order: `map` projects
    /// each shard, `merge` folds projections into the first. Shard
    /// ordering keeps floating-point reductions bit-stable across
    /// thread counts.
    pub fn fold<R, P, M>(&self, map: P, merge: M) -> R
    where
        P: Fn(&S) -> R,
        M: Fn(&mut R, R),
    {
        let mut iter = self.shards.iter();
        let first = iter.next().expect("ShardRunner has at least one shard");
        let mut total = map(first);
        for s in iter {
            merge(&mut total, map(s));
        }
        total
    }

    /// Borrows the shard states (in shard order).
    pub fn states(&self) -> &[S] {
        &self.shards
    }

    /// Consumes the runner, returning the shard states in shard order.
    pub fn into_states(self) -> Vec<S> {
        self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridem_mathkit::rng::{Rng64, Xoshiro256pp};

    struct Walker {
        rng: Xoshiro256pp,
        sum: f64,
        steps: u64,
    }

    fn runner(count: u32) -> ShardRunner<Walker> {
        ShardRunner::new(count, |i| Walker {
            rng: Xoshiro256pp::stream(99, u64::from(i)),
            sum: 0.0,
            steps: 0,
        })
    }

    fn walk(r: &mut ShardRunner<Walker>, rounds: usize) -> f64 {
        for _ in 0..rounds {
            r.run_round(|_, w| {
                for _ in 0..100 {
                    w.sum += w.rng.next_f64() - 0.5;
                    w.steps += 1;
                }
            });
        }
        r.fold(|w| w.sum, |a, b| *a += b)
    }

    #[test]
    fn deterministic_replay_and_thread_independence() {
        // Same constructor ⇒ same fold, and the parallel run must
        // agree bit-for-bit with the hand-rolled sequential loop (the
        // root drift test additionally varies HYBRIDEM_THREADS, which
        // must live alone in its own test binary — see
        // tests/drift_runtime.rs).
        let baseline = walk(&mut runner(7), 3);
        assert_eq!(baseline.to_bits(), walk(&mut runner(7), 3).to_bits());
        let mut serial = 0.0f64;
        for i in 0..7u64 {
            let mut rng = Xoshiro256pp::stream(99, i);
            let mut sum = 0.0;
            for _ in 0..300 {
                sum += rng.next_f64() - 0.5;
            }
            serial += sum;
        }
        assert_eq!(baseline.to_bits(), serial.to_bits());
    }

    #[test]
    fn rounds_accumulate_per_shard_state() {
        let mut r = runner(4);
        let _ = walk(&mut r, 2);
        assert_eq!(r.rounds(), 2);
        for w in r.states() {
            assert_eq!(w.steps, 200);
        }
        assert_eq!(r.into_states().len(), 4);
    }

    #[test]
    fn fold_runs_in_shard_order() {
        let mut r = ShardRunner::new(5, |i| i as u64);
        r.run_round(|i, s| *s += u64::from(i) * 10);
        let order = r.fold(|s| vec![*s], |a, b| a.extend(b));
        assert_eq!(order, vec![0, 11, 22, 33, 44]);
    }

    #[test]
    fn fold_order_pinned_under_imbalanced_load() {
        // Regression pin for the determinism contract: even when some
        // shards take much longer than others (so parallel *completion*
        // order scrambles), the fold must still visit shards in index
        // order and each shard must have been stepped exactly once.
        // This is exactly the property StealPool does NOT provide, and
        // the server's report fold depends on ShardRunner keeping it.
        let mut r = ShardRunner::new(8, |i| (i, 0u32));
        r.run_round(|i, s| {
            if i % 3 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            s.1 += 1;
        });
        let order = r.fold(|s| vec![s.0], |a, b| a.extend(b));
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(r.states().iter().all(|s| s.1 == 1), "one step per shard");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardRunner::new(0, |_| 0u8);
    }
}
