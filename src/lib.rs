//! # hybridem — Hybrid ANN + conventional demapping
//!
//! A Rust reproduction of *"A Hybrid Approach combining ANN-based and
//! Conventional Demapping in Communication for Efficient
//! FPGA-Implementation"* (Ney, Hammoud, Wehn — IEEE IPDPSW 2022).
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`mathkit`] — numeric substrate (complex numbers, matrices, stats,
//!   deterministic RNG, special functions);
//! - [`fixed`] — fixed-point arithmetic and tensor quantisation;
//! - [`parallel`] — scoped worker pool and deterministic Monte-Carlo;
//! - [`nn`] — from-scratch neural-network library with manual backprop;
//! - [`comm`] — communication substrate (constellations, channels,
//!   demappers, metrics, ECC, link simulation);
//! - [`geom`] — computational geometry (hulls, polygons, Voronoi);
//! - [`fpga`] — FPGA substrate simulator (MVAU pipelines, resource /
//!   latency / power models for the Xilinx ZU3EG);
//! - [`core`] — the paper's contribution: E2E autoencoder training,
//!   demapper retraining, decision-region centroid extraction, the
//!   hybrid demapper and the adaptation controller.
//!
//! ## Quickstart
//!
//! ```
//! use hybridem::core::config::SystemConfig;
//! use hybridem::core::pipeline::HybridPipeline;
//!
//! // Tiny budgets so the doctest runs in debug mode; examples and the
//! // experiment binaries use `SystemConfig::paper_default()`.
//! let mut cfg = SystemConfig::fast_test();
//! cfg.e2e_steps = 40;
//! cfg.batch_size = 32;
//! cfg.grid_n = 32;
//! let mut pipe = HybridPipeline::new(cfg);
//! pipe.e2e_train();
//! let report = pipe.extract_centroids();
//! assert_eq!(report.centroids.len(), 16);
//! ```

pub use hybridem_comm as comm;
pub use hybridem_core as core;
pub use hybridem_fixed as fixed;
pub use hybridem_fpga as fpga;
pub use hybridem_geom as geom;
pub use hybridem_mathkit as mathkit;
pub use hybridem_nn as nn;
pub use hybridem_parallel as parallel;
